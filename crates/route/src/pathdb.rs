//! The epoch-versioned path database — every path in the fabric, extracted
//! once per subnet sweep and shared by all consumers.
//!
//! The paper's comparison rests on path properties of static IB routing:
//! per-pair hop counts, link loads and fail-in-place recomputation after
//! cable faults (Section 4.4.3). [`PathDb`] makes the *path set* the
//! first-class object instead of the raw LFTs: an immutable, CSR-compressed
//! store of the ISL hop vector of every `(source switch, destination LID)`
//! pair, stamped with the sweep epoch that produced it and shared as
//! `Arc<PathDb>` across the simulator, the MPI layer and verification.
//!
//! * [`PathDb::build`] walks the LFTs once — in parallel over destination
//!   LIDs with `std::thread::scope` — validating reachability and loop
//!   freedom as it goes (the walk *is* the verification pass).
//! * [`PathDb::affected_by`] answers "which destination trees traverse this
//!   cable?", the query behind incremental fail-in-place rerouting.
//! * [`PathDb::patched`] rebuilds only the affected columns and bumps the
//!   epoch, leaving every other path untouched byte-for-byte.

use crate::dijkstra::EdgeWeights;
use crate::engines::walk_lft;
use crate::lft::{DirLink, RouteError, Routes};
use crate::lid::Lid;
use crate::verify::PathStats;
use hxtopo::{Endpoint, LinkId, NodeId, SwitchId, Topology};

/// One destination LID's worth of paths: per-switch hop counts plus the
/// concatenated hop vectors in ascending switch order.
type Column = (Vec<u32>, Vec<DirLink>);

/// Immutable, CSR-compressed per-`(source switch, destination LID)` path
/// store with an epoch stamp.
///
/// Hop vectors cover the inter-switch legs only; the source terminal hop
/// (per node) and destination terminal hop (per LID) are factored out into
/// side tables, so a full node-to-node path is
/// `[node_up] ++ isl_path(switch, lid) ++ [dst_down]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathDb {
    epoch: u64,
    num_switches: usize,
    lid_space: usize,
    engine: &'static str,
    /// CSR offsets into `isl_hops`, indexed `lid * num_switches + switch`;
    /// length `lid_space * num_switches + 1`. Only node-bearing source
    /// switches have non-empty slices.
    offsets: Vec<u32>,
    /// All ISL hop vectors, concatenated in `(lid, switch)` order.
    isl_hops: Vec<DirLink>,
    /// Switch index per node.
    node_sw: Vec<u32>,
    /// Directed terminal hop leaving each node.
    node_up: Vec<DirLink>,
    /// Attached-node count per switch (link-load weighting).
    nodes_at: Vec<u32>,
    /// Owner node index per LID (`u32::MAX` = unowned).
    owner: Vec<u32>,
    /// Directed terminal hop arriving at each LID's owner (dummy for
    /// unowned LIDs).
    dst_down: Vec<DirLink>,
}

/// Default build parallelism: the machine's cores, capped so huge hosts
/// don't shred a small LID space into confetti.
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Extracts one destination LID's paths from every node-bearing source
/// switch, validating that each walk terminates at the LID's owner.
fn build_column(
    topo: &Topology,
    routes: &Routes,
    src_switches: &[SwitchId],
    lid: Lid,
    owner: NodeId,
) -> Result<Column, RouteError> {
    let (dsw, _) = topo.node_switch(owner);
    let mut lens = vec![0u32; topo.num_switches()];
    let mut hops = Vec::new();
    for &sw in src_switches {
        if sw == dsw {
            continue; // same-switch delivery: no ISL legs
        }
        let before = hops.len();
        let arrived = walk_lft(topo, routes, sw, lid, |dl| hops.push(dl))?;
        // Delivery to the wrong node or over a deactivated cable is a
        // routing hole (the paper's fault-tolerance criterion): stale LFT
        // entries still "walk", but the store must refuse them.
        if arrived != owner || hops[before..].iter().any(|dl| !topo.is_active(dl.link())) {
            return Err(RouteError::NoRoute { switch: sw, lid });
        }
        lens[sw.idx()] = (hops.len() - before) as u32;
    }
    Ok((lens, hops))
}

impl PathDb {
    /// Builds the full path store from installed forwarding state, walking
    /// the LFT of every `(node-bearing switch, destination LID)` pair.
    ///
    /// `threads` is the build parallelism (`0` = [`auto_threads`]); the
    /// result is byte-identical regardless of the thread count, because LIDs
    /// are partitioned into contiguous chunks whose columns land in
    /// pre-assigned slots and errors are reported lowest-LID-first.
    pub fn build(
        topo: &Topology,
        routes: &Routes,
        epoch: u64,
        threads: usize,
    ) -> Result<PathDb, RouteError> {
        let lid_space = routes.lid_space();
        let src_switches: Vec<SwitchId> = topo
            .switches()
            .filter(|&s| topo.attached_nodes(s).next().is_some())
            .collect();
        let lid_map = &routes.lid_map;
        let threads = if threads == 0 {
            auto_threads()
        } else {
            threads
        }
        .clamp(1, lid_space.max(1));

        let mut cols: Vec<Option<Column>> = Vec::with_capacity(lid_space);
        cols.resize_with(lid_space, || None);
        if threads == 1 {
            for (l, slot) in cols.iter_mut().enumerate() {
                if let Some(owner) = lid_map.owner(l as Lid) {
                    *slot = Some(build_column(topo, routes, &src_switches, l as Lid, owner)?);
                }
            }
        } else {
            let chunk = lid_space.div_ceil(threads);
            let mut errs: Vec<Option<(Lid, RouteError)>> = vec![None; threads];
            std::thread::scope(|scope| {
                for (ci, (slots, err)) in cols.chunks_mut(chunk).zip(errs.iter_mut()).enumerate() {
                    let base = (ci * chunk) as Lid;
                    let src_switches = &src_switches;
                    scope.spawn(move || {
                        for (off, slot) in slots.iter_mut().enumerate() {
                            let lid = base + off as Lid;
                            let Some(owner) = lid_map.owner(lid) else {
                                continue;
                            };
                            match build_column(topo, routes, src_switches, lid, owner) {
                                Ok(c) => *slot = Some(c),
                                Err(e) => {
                                    *err = Some((lid, e));
                                    return;
                                }
                            }
                        }
                    });
                }
            });
            // Deterministic error selection: the lowest failing LID wins,
            // independent of thread completion order.
            if let Some((_, e)) = errs.into_iter().flatten().min_by_key(|&(l, _)| l) {
                return Err(e);
            }
        }
        Ok(Self::assemble(topo, routes, epoch, &cols))
    }

    /// Incremental patch: recomputes only the columns of `affected` LIDs
    /// from (repaired) forwarding state, copies every other column verbatim,
    /// and bumps the epoch. The LID layout must be unchanged.
    pub fn patched(
        &self,
        topo: &Topology,
        routes: &Routes,
        affected: &[Lid],
    ) -> Result<PathDb, RouteError> {
        assert_eq!(routes.lid_space(), self.lid_space, "LID layout changed");
        let s = self.num_switches;
        let src_switches: Vec<SwitchId> = topo
            .switches()
            .filter(|&sw| topo.attached_nodes(sw).next().is_some())
            .collect();
        let mut is_affected = vec![false; self.lid_space];
        for &l in affected {
            is_affected[l as usize] = true;
        }
        let mut offsets = Vec::with_capacity(self.offsets.len());
        offsets.push(0u32);
        let mut isl_hops: Vec<DirLink> = Vec::with_capacity(self.isl_hops.len());
        #[allow(clippy::needless_range_loop)] // lid also scales offset math
        for lid in 0..self.lid_space {
            if is_affected[lid] {
                let owner = routes
                    .lid_map
                    .owner(lid as Lid)
                    .ok_or(RouteError::UnknownLid(lid as Lid))?;
                let (lens, hops) = build_column(topo, routes, &src_switches, lid as Lid, owner)?;
                let mut run = *offsets.last().unwrap();
                for &len in &lens {
                    run += len;
                    offsets.push(run);
                }
                isl_hops.extend_from_slice(&hops);
            } else {
                let base = self.offsets[lid * s];
                let shift = *offsets.last().unwrap() as i64 - base as i64;
                for i in 1..=s {
                    offsets.push((self.offsets[lid * s + i] as i64 + shift) as u32);
                }
                let end = self.offsets[lid * s + s];
                isl_hops.extend_from_slice(&self.isl_hops[base as usize..end as usize]);
            }
        }
        Ok(PathDb {
            epoch: self.epoch + 1,
            num_switches: s,
            lid_space: self.lid_space,
            engine: routes.engine,
            offsets,
            isl_hops,
            node_sw: self.node_sw.clone(),
            node_up: self.node_up.clone(),
            nodes_at: self.nodes_at.clone(),
            owner: self.owner.clone(),
            dst_down: self.dst_down.clone(),
        })
    }

    fn assemble(topo: &Topology, routes: &Routes, epoch: u64, cols: &[Option<Column>]) -> PathDb {
        let s = topo.num_switches();
        let lid_space = routes.lid_space();
        let total: usize = cols.iter().flatten().map(|(_, h)| h.len()).sum();
        let mut offsets = Vec::with_capacity(lid_space * s + 1);
        offsets.push(0u32);
        let mut isl_hops = Vec::with_capacity(total);
        for col in cols {
            let mut run = *offsets.last().unwrap();
            match col {
                Some((lens, hops)) => {
                    for &len in lens {
                        run += len;
                        offsets.push(run);
                    }
                    isl_hops.extend_from_slice(hops);
                }
                None => offsets.extend(std::iter::repeat_n(run, s)),
            }
        }
        let mut node_sw = Vec::with_capacity(topo.num_nodes());
        let mut node_up = Vec::with_capacity(topo.num_nodes());
        let mut nodes_at = vec![0u32; s];
        for n in topo.nodes() {
            let (sw, up) = topo.node_switch(n);
            node_sw.push(sw.0);
            node_up.push(DirLink::leaving(topo, up, Endpoint::Node(n)));
            nodes_at[sw.idx()] += 1;
        }
        let mut owner = vec![u32::MAX; lid_space];
        let mut dst_down = vec![DirLink::from_index(0); lid_space];
        for (lid, o) in routes.lid_map.lids() {
            owner[lid as usize] = o.0;
            let (dsw, down) = topo.node_switch(o);
            dst_down[lid as usize] = DirLink::leaving(topo, down, Endpoint::Switch(dsw));
        }
        PathDb {
            epoch,
            num_switches: s,
            lid_space,
            engine: routes.engine,
            offsets,
            isl_hops,
            node_sw,
            node_up,
            nodes_at,
            owner,
            dst_down,
        }
    }

    /// Sweep epoch that produced this store.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Routing engine that produced the underlying forwarding state.
    pub fn engine(&self) -> &'static str {
        self.engine
    }

    /// LID-space size.
    pub fn lid_space(&self) -> usize {
        self.lid_space
    }

    /// Total stored ISL hops (memory-footprint metric).
    pub fn num_isl_hops(&self) -> usize {
        self.isl_hops.len()
    }

    /// Owner node of a LID (`None` = unowned).
    pub fn lid_owner(&self, lid: Lid) -> Option<NodeId> {
        let o = *self.owner.get(lid as usize)?;
        (o != u32::MAX).then_some(NodeId(o))
    }

    /// Directed terminal hop arriving at a LID's owner (dummy for unowned
    /// LIDs).
    pub fn dst_down_hop(&self, lid: Lid) -> DirLink {
        self.dst_down[lid as usize]
    }

    /// Approximate heap footprint in bytes of the path payload (CSR
    /// offsets + hop vectors) plus side tables — comparable against
    /// [`crate::delta::DeltaPathDb::approx_bytes`].
    pub fn approx_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.isl_hops.len() * 4
            + self.node_sw.len() * 4
            + self.node_up.len() * 4
            + self.nodes_at.len() * 4
            + self.owner.len() * 4
            + self.dst_down.len() * 4
    }

    /// The ISL hop vector from a source switch towards a destination LID.
    /// Empty for same-switch delivery, unowned LIDs and node-less switches.
    #[inline]
    pub fn isl_path(&self, sw: SwitchId, dst_lid: Lid) -> &[DirLink] {
        let i = dst_lid as usize * self.num_switches + sw.idx();
        &self.isl_hops[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The full node-to-node hop vector (terminal cables included), exactly
    /// as [`Routes::path`] would extract it. `None` for unowned LIDs; empty
    /// for self-sends.
    pub fn node_path(&self, src: NodeId, dst_lid: Lid) -> Option<Vec<DirLink>> {
        let mut hops = Vec::new();
        self.node_path_into(src, dst_lid, &mut hops).then_some(hops)
    }

    /// [`PathDb::node_path`] into a caller-provided buffer (cleared first),
    /// so samplers looping over many pairs can recycle the allocation.
    /// Returns `false` for unowned LIDs; `true` with an empty buffer for
    /// self-sends.
    pub fn node_path_into(&self, src: NodeId, dst_lid: Lid, out: &mut Vec<DirLink>) -> bool {
        out.clear();
        let Some(&o) = self.owner.get(dst_lid as usize) else {
            return false;
        };
        if o == u32::MAX {
            return false;
        }
        if o == src.0 {
            return true;
        }
        let sw = self.node_sw[src.idx()] as usize;
        let i = dst_lid as usize * self.num_switches + sw;
        let isl = &self.isl_hops[self.offsets[i] as usize..self.offsets[i + 1] as usize];
        out.reserve(isl.len() + 2);
        out.push(self.node_up[src.idx()]);
        out.extend_from_slice(isl);
        out.push(self.dst_down[dst_lid as usize]);
        true
    }

    /// Destination LIDs whose path set traverses `l` in either direction —
    /// the trees an incremental reroute must recompute after that cable
    /// fails.
    pub fn affected_by(&self, l: LinkId) -> Vec<Lid> {
        let s = self.num_switches;
        let mut out = Vec::new();
        for lid in 0..self.lid_space {
            let a = self.offsets[lid * s] as usize;
            let b = self.offsets[lid * s + s] as usize;
            if self.isl_hops[a..b].iter().any(|dl| dl.link() == l) {
                out.push(lid as Lid);
            }
        }
        out
    }

    /// Per-directed-link path counts, weighted by the number of nodes on
    /// each source switch — the same accounting SSSP's balancing uses, so an
    /// incremental repair can stay load-aware without an engine re-run.
    pub fn link_loads(&self, topo: &Topology) -> EdgeWeights {
        let mut w = EdgeWeights::new(topo);
        let s = self.num_switches;
        for lid in 0..self.lid_space {
            if self.owner[lid] == u32::MAX {
                continue;
            }
            for (sw, &cnt) in self.nodes_at.iter().enumerate() {
                if cnt == 0 {
                    continue;
                }
                let a = self.offsets[lid * s + sw] as usize;
                let b = self.offsets[lid * s + sw + 1] as usize;
                for dl in &self.isl_hops[a..b] {
                    w.add(*dl, cnt as u64);
                }
            }
        }
        w
    }

    /// Aggregate hop statistics over every (source node, destination LID)
    /// pair, excluding self-sends — the stats `verify_paths` reports.
    pub fn stats(&self) -> PathStats {
        let mut pairs = 0usize;
        let mut max = 0usize;
        let mut sum = 0u64;
        let mut hist = vec![0usize; 8];
        let s = self.num_switches;
        for (n, &sw) in self.node_sw.iter().enumerate() {
            for lid in 0..self.lid_space {
                let o = self.owner[lid];
                if o == u32::MAX || o == n as u32 {
                    continue;
                }
                let i = lid * s + sw as usize;
                let h = (self.offsets[i + 1] - self.offsets[i]) as usize;
                pairs += 1;
                sum += h as u64;
                max = max.max(h);
                if h >= hist.len() {
                    hist.resize(h + 1, 0);
                }
                hist[h] += 1;
            }
        }
        PathStats {
            pairs,
            max_isl_hops: max,
            avg_isl_hops: if pairs == 0 {
                0.0
            } else {
                sum as f64 / pairs as f64
            },
            hist,
        }
    }

    /// Structural equality ignoring the epoch stamp: true when both stores
    /// hold byte-identical paths.
    pub fn content_eq(&self, other: &PathDb) -> bool {
        self.num_switches == other.num_switches
            && self.lid_space == other.lid_space
            && self.engine == other.engine
            && self.offsets == other.offsets
            && self.isl_hops == other.isl_hops
            && self.node_sw == other.node_sw
            && self.node_up == other.node_up
            && self.nodes_at == other.nodes_at
            && self.owner == other.owner
            && self.dst_down == other.dst_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::{Dfsssp, MinHop, RoutingEngine};
    use hxtopo::hyperx::HyperXConfig;
    use hxtopo::LinkClass;

    fn hx() -> Topology {
        HyperXConfig::new(vec![4, 4], 2).build()
    }

    #[test]
    fn node_paths_match_lft_walks() {
        let t = hx();
        let r = MinHop::default().route(&t).unwrap();
        let db = PathDb::build(&t, &r, 1, 1).unwrap();
        for src in t.nodes() {
            for (lid, _) in r.lid_map.lids() {
                let expect = r.path(&t, src, lid).unwrap().hops;
                assert_eq!(db.node_path(src, lid).unwrap(), expect, "{src} lid {lid}");
            }
        }
        assert_eq!(db.node_path(hxtopo::NodeId(0), 0), None, "LID 0 unowned");
    }

    #[test]
    fn parallel_build_is_byte_identical() {
        let t = hx();
        let r = Dfsssp::default().route(&t).unwrap();
        let seq = PathDb::build(&t, &r, 1, 1).unwrap();
        for threads in [2, 3, 7] {
            let par = PathDb::build(&t, &r, 1, threads).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn stats_match_verify_paths() {
        let t = hx();
        let r = Dfsssp::default().route(&t).unwrap();
        let db = PathDb::build(&t, &r, 1, 0).unwrap();
        let s = db.stats();
        assert_eq!(s.pairs, 32 * 31);
        assert_eq!(s.hist.iter().sum::<usize>(), s.pairs);
    }

    #[test]
    fn affected_by_finds_exactly_the_traversing_lids() {
        let t = hx();
        let r = MinHop::default().route(&t).unwrap();
        let db = PathDb::build(&t, &r, 1, 1).unwrap();
        let isl = t
            .links()
            .find(|(_, l)| l.class != LinkClass::Terminal)
            .unwrap()
            .0;
        let affected = db.affected_by(isl);
        assert!(!affected.is_empty());
        for (lid, _) in r.lid_map.lids() {
            let traverses = t.nodes().any(|n| {
                db.node_path(n, lid)
                    .unwrap()
                    .iter()
                    .any(|dl| dl.link() == isl)
            });
            assert_eq!(affected.contains(&lid), traverses, "lid {lid}");
        }
    }

    #[test]
    fn patched_with_no_faults_only_bumps_epoch() {
        let t = hx();
        let r = MinHop::default().route(&t).unwrap();
        let db = PathDb::build(&t, &r, 3, 1).unwrap();
        let p = db.patched(&t, &r, &[]).unwrap();
        assert_eq!(p.epoch(), 4);
        assert!(p.content_eq(&db));
        // Re-deriving *every* column must also be a fixed point.
        let all: Vec<Lid> = r.lid_map.lids().map(|(l, _)| l).collect();
        assert!(db.patched(&t, &r, &all).unwrap().content_eq(&db));
    }

    #[test]
    fn build_detects_broken_tables() {
        let t = hx();
        let mut r = MinHop::default().route(&t).unwrap();
        let (lid, _) = r.lid_map.lids().next().unwrap();
        r.clear(hxtopo::SwitchId(15), lid);
        assert!(matches!(
            PathDb::build(&t, &r, 1, 4),
            Err(RouteError::NoRoute { .. })
        ));
    }

    #[test]
    fn link_loads_count_every_pair_hop() {
        let t = hx();
        let r = MinHop::default().route(&t).unwrap();
        let db = PathDb::build(&t, &r, 1, 1).unwrap();
        let stats = db.stats();
        let loads = db.link_loads(&t);
        // Total load == total ISL hops over all (node, lid) pairs.
        let expect: u64 = stats
            .hist
            .iter()
            .enumerate()
            .map(|(h, &n)| (h * n) as u64)
            .sum();
        assert_eq!(loads.total(), expect);
    }
}
