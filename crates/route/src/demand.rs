//! Communication-demand matrices — the input PARX ingests.
//!
//! The paper records, with a low-level IB profiler, the absolute number of
//! bytes transferred between every pair of MPI ranks, then normalizes to
//! `0..=255` (0 = no traffic, 1 = lowest non-zero, 255 = heaviest pair;
//! Section 3.2.3). A job-submission interface turns the rank-based profile
//! plus the selected node allocation into the node/LID-based demand file the
//! routing engine consumes; here that corresponds to building a
//! [`Demand`] over nodes from rank-level byte counts and a rank->node map.

use hxtopo::NodeId;

/// Raw byte counts between node pairs (sparse, per source).
#[derive(Debug, Clone, Default)]
pub struct Demand {
    /// `entries[i]` lists `(destination, bytes)` sent by node `i`.
    entries: Vec<Vec<(NodeId, u64)>>,
}

impl Demand {
    /// Empty demand over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Demand {
        Demand {
            entries: vec![Vec::new(); num_nodes],
        }
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.entries.len()
    }

    /// Accumulates bytes sent from `src` to `dst`.
    pub fn add(&mut self, src: NodeId, dst: NodeId, bytes: u64) {
        if src == dst || bytes == 0 {
            return;
        }
        let row = &mut self.entries[src.idx()];
        match row.iter_mut().find(|(d, _)| *d == dst) {
            Some((_, b)) => *b += bytes,
            None => row.push((dst, bytes)),
        }
    }

    /// Builds a node demand from a rank-level byte matrix and a rank->node
    /// placement (the SAR-style interface of Section 4.4.3).
    pub fn from_rank_matrix(
        num_nodes: usize,
        rank_bytes: &[Vec<u64>],
        rank_to_node: &[NodeId],
    ) -> Demand {
        assert_eq!(rank_bytes.len(), rank_to_node.len());
        let mut d = Demand::new(num_nodes);
        for (src_rank, row) in rank_bytes.iter().enumerate() {
            assert_eq!(row.len(), rank_to_node.len());
            for (dst_rank, &bytes) in row.iter().enumerate() {
                if src_rank != dst_rank && bytes > 0 {
                    d.add(rank_to_node[src_rank], rank_to_node[dst_rank], bytes);
                }
            }
        }
        d
    }

    /// Sends of one node.
    pub fn sends(&self, src: NodeId) -> &[(NodeId, u64)] {
        &self.entries[src.idx()]
    }

    /// All nodes that appear as destinations, in first-appearance order —
    /// the order Algorithm 1 processes the demand-listed destinations.
    pub fn listed_destinations(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.entries.len()];
        let mut out = Vec::new();
        for row in &self.entries {
            for &(d, _) in row {
                if !seen[d.idx()] {
                    seen[d.idx()] = true;
                    out.push(d);
                }
            }
        }
        out
    }

    /// Normalizes byte counts to the paper's `0..=255` range: the heaviest
    /// pair maps to 255, any non-zero pair to at least 1.
    pub fn normalized(&self) -> NormalizedDemand {
        let max = self
            .entries
            .iter()
            .flat_map(|r| r.iter().map(|&(_, b)| b))
            .max()
            .unwrap_or(0);
        let mut rows = vec![Vec::new(); self.entries.len()];
        if max > 0 {
            for (i, row) in self.entries.iter().enumerate() {
                rows[i] = row
                    .iter()
                    .map(|&(d, b)| {
                        let w = ((b as u128 * 255) / max as u128) as u8;
                        (d, w.max(1))
                    })
                    .collect();
            }
        }
        NormalizedDemand { rows }
    }
}

/// Demand normalized to the paper's `D_n = [0, ..., 255]` weights.
#[derive(Debug, Clone)]
pub struct NormalizedDemand {
    rows: Vec<Vec<(NodeId, u8)>>,
}

impl NormalizedDemand {
    /// Weighted sends of one node.
    pub fn sends(&self, src: NodeId) -> &[(NodeId, u8)] {
        &self.rows[src.idx()]
    }

    /// Weight from `src` to `dst` (0 = no recorded traffic).
    pub fn weight(&self, src: NodeId, dst: NodeId) -> u8 {
        self.rows[src.idx()]
            .iter()
            .find(|(d, _)| *d == dst)
            .map_or(0, |&(_, w)| w)
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.rows.len()
    }

    /// Sources with a given destination, with weights — the inner lookup of
    /// Algorithm 1's edge-update loop.
    pub fn senders_to(&self, dst: NodeId) -> impl Iterator<Item = (NodeId, u8)> + '_ {
        self.rows.iter().enumerate().filter_map(move |(i, row)| {
            row.iter()
                .find(|(d, _)| *d == dst)
                .map(|&(_, w)| (NodeId(i as u32), w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut d = Demand::new(4);
        d.add(NodeId(0), NodeId(1), 100);
        d.add(NodeId(0), NodeId(1), 50);
        d.add(NodeId(0), NodeId(2), 10);
        assert_eq!(d.sends(NodeId(0)), &[(NodeId(1), 150), (NodeId(2), 10)]);
    }

    #[test]
    fn self_and_zero_ignored() {
        let mut d = Demand::new(2);
        d.add(NodeId(0), NodeId(0), 100);
        d.add(NodeId(0), NodeId(1), 0);
        assert!(d.sends(NodeId(0)).is_empty());
    }

    #[test]
    fn normalization_range() {
        let mut d = Demand::new(3);
        d.add(NodeId(0), NodeId(1), 1_000_000);
        d.add(NodeId(0), NodeId(2), 1); // tiny but non-zero -> weight 1
        d.add(NodeId(1), NodeId(2), 500_000);
        let n = d.normalized();
        assert_eq!(n.weight(NodeId(0), NodeId(1)), 255);
        assert_eq!(n.weight(NodeId(0), NodeId(2)), 1);
        assert_eq!(n.weight(NodeId(1), NodeId(2)), 127);
        assert_eq!(n.weight(NodeId(2), NodeId(0)), 0);
    }

    #[test]
    fn listed_destinations_order() {
        let mut d = Demand::new(4);
        d.add(NodeId(0), NodeId(3), 5);
        d.add(NodeId(1), NodeId(2), 5);
        d.add(NodeId(2), NodeId(3), 5);
        assert_eq!(d.listed_destinations(), vec![NodeId(3), NodeId(2)]);
    }

    #[test]
    fn senders_to_inverts() {
        let mut d = Demand::new(3);
        d.add(NodeId(0), NodeId(2), 10);
        d.add(NodeId(1), NodeId(2), 20);
        let n = d.normalized();
        let senders: Vec<_> = n.senders_to(NodeId(2)).collect();
        assert_eq!(senders.len(), 2);
        assert_eq!(senders[0].0, NodeId(0));
        assert_eq!(senders[1].0, NodeId(1));
        assert_eq!(senders[1].1, 255);
    }

    #[test]
    fn from_rank_matrix_respects_placement() {
        // 2 ranks on nodes 5 and 3.
        let rank_bytes = vec![vec![0, 77], vec![33, 0]];
        let map = vec![NodeId(5), NodeId(3)];
        let d = Demand::from_rank_matrix(8, &rank_bytes, &map);
        assert_eq!(d.sends(NodeId(5)), &[(NodeId(3), 77)]);
        assert_eq!(d.sends(NodeId(3)), &[(NodeId(5), 33)]);
    }

    #[test]
    fn empty_demand_normalizes() {
        let d = Demand::new(3);
        let n = d.normalized();
        assert_eq!(n.weight(NodeId(0), NodeId(1)), 0);
        assert!(d.listed_destinations().is_empty());
    }
}
