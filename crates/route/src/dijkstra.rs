//! Destination-rooted, weight-balancing shortest-path computation — the
//! "modified Dijkstra algorithm of DFSSSP routing" the paper's Algorithm 1
//! builds on (Domke, Hoefler, Nagel, IPDPS'11).
//!
//! The algorithm computes, for one destination switch, the output port every
//! other switch uses to forward towards it. Costs are lexicographic
//! `(hop count, accumulated edge weight, tie-break)`: paths are always
//! minimal in hops, and the per-directed-link weights (incremented by the
//! engines after each destination is processed) spread the shortest-path
//! trees across the fabric. A per-cable mask supports PARX's temporary link
//! removal (rules R1–R4).

use crate::lft::DirLink;
use hxtopo::{Endpoint, LinkId, SwitchId, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-directed-link accumulated weights (indexed by [`DirLink::index`]).
#[derive(Debug, Clone)]
pub struct EdgeWeights {
    w: Vec<u64>,
}

impl EdgeWeights {
    /// Zero weights for a topology.
    pub fn new(topo: &Topology) -> EdgeWeights {
        EdgeWeights {
            w: vec![0; topo.num_links() * 2],
        }
    }

    /// Weight of a directed link.
    #[inline]
    pub fn get(&self, d: DirLink) -> u64 {
        self.w[d.index()]
    }

    /// Adds to a directed link's weight.
    #[inline]
    pub fn add(&mut self, d: DirLink, amount: u64) {
        self.w[d.index()] += amount;
    }

    /// Maximum weight over all directed links (load-balance metric).
    pub fn max(&self) -> u64 {
        self.w.iter().copied().max().unwrap_or(0)
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.w.iter().sum()
    }
}

/// Shortest-path tree towards one destination switch.
#[derive(Debug, Clone)]
pub struct DestTree {
    /// The destination.
    pub dst: SwitchId,
    /// Hop distance to the destination per switch (`u32::MAX` unreachable).
    pub hops: Vec<u32>,
    /// Output cable towards the destination per switch (`None` for the
    /// destination itself and unreachable switches).
    pub out: Vec<Option<LinkId>>,
}

impl DestTree {
    /// Whether a switch can reach the destination.
    #[inline]
    pub fn reachable(&self, s: SwitchId) -> bool {
        self.hops[s.idx()] != u32::MAX
    }

    /// Walks from `from` towards the destination, invoking `visit` for every
    /// directed cable on the way. Returns false if the walk failed.
    pub fn walk(&self, topo: &Topology, from: SwitchId, mut visit: impl FnMut(DirLink)) -> bool {
        let mut cur = from;
        for _ in 0..=topo.num_switches() {
            if cur == self.dst {
                return true;
            }
            let Some(link) = self.out[cur.idx()] else {
                return false;
            };
            let dl = DirLink::leaving(topo, link, Endpoint::Switch(cur));
            visit(dl);
            match dl.head(topo) {
                Endpoint::Switch(next) => cur = next,
                Endpoint::Node(_) => return false,
            }
        }
        false
    }
}

/// Computes the shortest-path tree towards `dst` under the given weights.
///
/// `mask`, if present, marks cables as usable (`true`) or temporarily
/// removed (`false`) — terminal cables are never subject to the mask.
/// Inactive (faulted) cables are always skipped.
pub fn dijkstra_to_dest(
    topo: &Topology,
    dst: SwitchId,
    weights: &EdgeWeights,
    mask: Option<&[bool]>,
) -> DestTree {
    let n = topo.num_switches();
    let mut hops = vec![u32::MAX; n];
    let mut wsum = vec![u64::MAX; n];
    let mut out: Vec<Option<LinkId>> = vec![None; n];

    // Heap entries: Reverse((hops, weight, switch, via-link)). The switch id
    // in the key makes pops deterministic among equal costs.
    let mut heap: BinaryHeap<Reverse<(u32, u64, u32, u32)>> = BinaryHeap::new();
    hops[dst.idx()] = 0;
    wsum[dst.idx()] = 0;
    heap.push(Reverse((0, 0, dst.0, u32::MAX)));

    while let Some(Reverse((h, w, sid, via))) = heap.pop() {
        let s = SwitchId(sid);
        // Stale entry?
        if (h, w) != (hops[s.idx()], wsum[s.idx()]) {
            continue;
        }
        if via != u32::MAX && out[s.idx()].is_none() {
            out[s.idx()] = Some(LinkId(via));
        }
        // Relax neighbors v: traffic flows v -> s, so the edge weight is the
        // v->s direction of the cable.
        for (v, link) in topo.active_switch_neighbors(s) {
            if let Some(m) = mask {
                if !m[link.idx()] {
                    continue;
                }
            }
            let dl = DirLink::leaving(topo, link, Endpoint::Switch(v));
            let cand = (h + 1, w.saturating_add(weights.get(dl)));
            let cur = (hops[v.idx()], wsum[v.idx()]);
            let better = cand < cur
                || (cand == cur && out[v.idx()].is_some_and(|cur_link| link.0 < cur_link.0));
            if better {
                hops[v.idx()] = cand.0;
                wsum[v.idx()] = cand.1;
                out[v.idx()] = Some(link);
                heap.push(Reverse((cand.0, cand.1, v.0, link.0)));
            }
        }
    }

    DestTree { dst, hops, out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hxtopo::hyperx::HyperXConfig;
    use hxtopo::LinkClass;

    #[test]
    fn tree_reaches_all_switches() {
        let t = HyperXConfig::new(vec![4, 4], 1).build();
        let w = EdgeWeights::new(&t);
        let tree = dijkstra_to_dest(&t, SwitchId(0), &w, None);
        for s in t.switches() {
            assert!(tree.reachable(s));
            // 2-D HyperX: at most 2 hops.
            assert!(tree.hops[s.idx()] <= 2);
        }
        assert_eq!(tree.hops[0], 0);
        assert!(tree.out[0].is_none());
    }

    #[test]
    fn walk_follows_tree() {
        let t = HyperXConfig::new(vec![3, 3], 1).build();
        let w = EdgeWeights::new(&t);
        let tree = dijkstra_to_dest(&t, SwitchId(8), &w, None);
        for s in t.switches() {
            let mut hops = 0;
            assert!(tree.walk(&t, s, |_| hops += 1));
            assert_eq!(hops, tree.hops[s.idx()]);
        }
    }

    #[test]
    fn weights_divert_ties() {
        // Square s0-s1-s3, s0-s2-s3: two equal 2-hop paths from s0 to s3.
        let mut b = hxtopo::TopologyBuilder::new("square", 4);
        let l01 = b.link_switches(SwitchId(0), SwitchId(1), LinkClass::Aoc);
        b.link_switches(SwitchId(0), SwitchId(2), LinkClass::Aoc);
        b.link_switches(SwitchId(1), SwitchId(3), LinkClass::Aoc);
        b.link_switches(SwitchId(2), SwitchId(3), LinkClass::Aoc);
        let t = b.build();
        let mut w = EdgeWeights::new(&t);
        let tree = dijkstra_to_dest(&t, SwitchId(3), &w, None);
        let first = tree.out[0].unwrap();
        // Heavily load the first choice in the travel direction (s0 ->).
        let dl = DirLink::leaving(&t, first, Endpoint::Switch(SwitchId(0)));
        w.add(dl, 100);
        let tree2 = dijkstra_to_dest(&t, SwitchId(3), &w, None);
        let second = tree2.out[0].unwrap();
        assert_ne!(first, second, "weight should divert the tie");
        let _ = l01;
    }

    #[test]
    fn hops_stay_minimal_despite_weights() {
        // Even under heavy weight, paths must stay hop-minimal
        // (lexicographic cost), matching static shortest-path IB routing.
        let t = HyperXConfig::new(vec![5], 1).build(); // complete graph K5
        let mut w = EdgeWeights::new(&t);
        // Load every cable touching s0 massively.
        for (id, l) in t.links() {
            if l.a.switch() == Some(SwitchId(0)) || l.b.switch() == Some(SwitchId(0)) {
                w.add(DirLink::new(id, true), 1_000_000);
                w.add(DirLink::new(id, false), 1_000_000);
            }
        }
        let tree = dijkstra_to_dest(&t, SwitchId(0), &w, None);
        for s in t.switches() {
            if s != SwitchId(0) {
                assert_eq!(tree.hops[s.idx()], 1, "direct link must win in K5");
            }
        }
    }

    #[test]
    fn mask_forces_detours() {
        // 1-D HyperX of 4 switches (complete graph). Mask out the direct
        // s1-s0 cable: s1 must take 2 hops.
        let t = HyperXConfig::new(vec![4], 1).build();
        let w = EdgeWeights::new(&t);
        let mut mask = vec![true; t.num_links()];
        for (id, l) in t.links() {
            let ab = (l.a.switch(), l.b.switch());
            if ab == (Some(SwitchId(0)), Some(SwitchId(1)))
                || ab == (Some(SwitchId(1)), Some(SwitchId(0)))
            {
                mask[id.idx()] = false;
            }
        }
        let tree = dijkstra_to_dest(&t, SwitchId(0), &w, Some(&mask));
        assert_eq!(tree.hops[1], 2);
        assert_eq!(tree.hops[2], 1);
    }

    #[test]
    fn unreachable_marked() {
        let t = HyperXConfig::new(vec![3], 1).build();
        let w = EdgeWeights::new(&t);
        // Mask all cables of s2.
        let mut mask = vec![true; t.num_links()];
        for (id, l) in t.links() {
            if l.a.switch() == Some(SwitchId(2)) || l.b.switch() == Some(SwitchId(2)) {
                mask[id.idx()] = false;
            }
        }
        let tree = dijkstra_to_dest(&t, SwitchId(0), &w, Some(&mask));
        assert!(!tree.reachable(SwitchId(2)));
        assert!(tree.reachable(SwitchId(1)));
    }

    #[test]
    fn deterministic_across_runs() {
        let t = HyperXConfig::new(vec![6, 4], 2).build();
        let w = EdgeWeights::new(&t);
        let a = dijkstra_to_dest(&t, SwitchId(7), &w, None);
        let b = dijkstra_to_dest(&t, SwitchId(7), &w, None);
        assert_eq!(a.out, b.out);
    }
}
