//! # hxroute — InfiniBand-style static routing engines
//!
//! Implements the full routing stack of the paper's evaluation:
//!
//! * [`lid`] — LID space with LID mask control (LMC), including the PARX
//!   quadrant-block LID policy,
//! * [`lft`] — per-switch linear forwarding tables, path extraction, and
//!   service-level (virtual lane) state,
//! * [`dijkstra`] — the weight-balancing, maskable shortest-path core shared
//!   by SSSP, DFSSSP and PARX,
//! * [`cdg`] — channel dependency graphs and VL layering (Dally & Seitz
//!   deadlock avoidance),
//! * [`engines`] — `ftree`, `Up*/Down*`, `SSSP`, `DFSSSP`, `MinHop` and the
//!   paper's novel `PARX` (Algorithm 1),
//! * [`table1`] — the paper's Table 1 (LID selection by quadrant pair and
//!   message size) and rules R1–R4,
//! * [`demand`] — communication-demand profiles PARX ingests,
//! * [`pathdb`] — the epoch-versioned, CSR-compressed path store every
//!   consumer (simulator, MPI layer, verification) resolves paths from,
//! * [`delta`] — the delta-encoded compact sibling (first ISL hop per
//!   pair, chained at resolve time) for multi-plane scale,
//! * [`plane`] — per-plane shard handle over `Arc<PathDb>` stores for
//!   K-plane fabrics with independent live epochs,
//! * [`verify`] — loop-freedom, reachability and deadlock-freedom checks.
//!
//! # Example
//!
//! Route a small HyperX with the paper's PARX (Algorithm 1) and inspect a
//! minimal and a forced-detour path:
//!
//! ```
//! use hxroute::engines::{Parx, RoutingEngine};
//! use hxroute::{verify_deadlock_free, verify_paths};
//! use hxtopo::hyperx::HyperXConfig;
//! use hxtopo::NodeId;
//!
//! let topo = HyperXConfig::new(vec![4, 4], 2).build();
//! let routes = Parx::default().route(&topo).unwrap();
//!
//! // Criteria (3) and (4) of Section 3.2:
//! verify_paths(&topo, &routes).unwrap();
//! let vls = verify_deadlock_free(&topo, &routes).unwrap();
//! assert!(vls <= 8, "within the QDR hardware's virtual lanes");
//!
//! // Nodes 0 and 2 share the top-left quadrant on different switches:
//! // LID1 (remove right half) is minimal, LID0 (remove left half) detours.
//! let (a, b) = (NodeId(0), NodeId(2));
//! let minimal = routes.path_to(&topo, a, b, 1).unwrap();
//! let detour = routes.path_to(&topo, a, b, 0).unwrap();
//! assert!(detour.isl_hops() > minimal.isl_hops());
//! ```

pub mod cdg;
pub mod delta;
pub mod demand;
pub mod dijkstra;
pub mod engines;
pub mod lft;
pub mod lid;
pub mod opensm;
pub mod pathdb;
pub mod plane;
pub mod table1;
pub mod verify;

pub use delta::DeltaPathDb;
pub use demand::{Demand, NormalizedDemand};
pub use dijkstra::{dijkstra_to_dest, DestTree, EdgeWeights};
pub use engines::{
    engine_by_name, engine_from_env, Dfsssp, FatPaths, FtHyperX, Ftree, IncrementalRepair, Lash,
    LftDelta, MinHop, Multipath, Parx, RoutingEngine, Sssp, UpDown, ENGINE_NAMES,
};
pub use lft::{DirLink, Path, RouteError, Routes};
pub use lid::{Lid, LidMap, LidPolicy};
pub use opensm::{FabricSnapshot, SubnetManager, SweepReport, WhatIfReport};
pub use pathdb::PathDb;
pub use plane::PlaneSet;
pub use table1::{lid_choices, select_lid, SizeClass, DEFAULT_THRESHOLD};
pub use verify::{verify_deadlock_free, verify_paths, PathStats};
