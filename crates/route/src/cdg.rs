//! Channel dependency graph (CDG) and virtual-lane layering.
//!
//! Dally & Seitz: a set of routes is deadlock-free iff the channel
//! dependency graph — nodes are directed channels, an edge `c1 -> c2` exists
//! when some packet may hold `c1` while requesting `c2` — is acyclic.
//! DFSSSP (and PARX on top of it) achieves deadlock freedom by partitioning
//! the source-destination paths into virtual lanes such that each lane's CDG
//! stays acyclic (paper Algorithm 1, last loop).

use crate::lft::DirLink;
use std::collections::HashSet;

/// One virtual lane's channel dependency graph over the directed channels of
/// a topology. Channels are identified by [`DirLink::index`].
#[derive(Debug, Clone)]
pub struct Cdg {
    /// Adjacency: `adj[c1]` lists channels depended on from `c1`.
    adj: Vec<Vec<u32>>,
    /// Dedup of edges as `c1 * n + c2`.
    edges: HashSet<u64>,
    n: usize,
}

impl Cdg {
    /// Empty CDG over `num_channels` directed channels.
    pub fn new(num_channels: usize) -> Cdg {
        Cdg {
            adj: vec![Vec::new(); num_channels],
            edges: HashSet::new(),
            n: num_channels,
        }
    }

    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    fn key(&self, a: u32, b: u32) -> u64 {
        a as u64 * self.n as u64 + b as u64
    }

    /// Whether the dependency edge already exists.
    #[inline]
    pub fn has_edge(&self, a: DirLink, b: DirLink) -> bool {
        self.edges
            .contains(&self.key(a.index() as u32, b.index() as u32))
    }

    /// Is `target` reachable from `from` over existing edges plus the
    /// overlay edges?
    fn reaches(&self, from: u32, target: u32, overlay: &[(u32, u32)]) -> bool {
        if from == target {
            return true;
        }
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        seen.insert(from);
        while let Some(c) = stack.pop() {
            let step = |n: u32, seen: &mut HashSet<u32>, stack: &mut Vec<u32>| -> bool {
                if n == target {
                    return true;
                }
                if seen.insert(n) {
                    stack.push(n);
                }
                false
            };
            for &nxt in &self.adj[c as usize] {
                if step(nxt, &mut seen, &mut stack) {
                    return true;
                }
            }
            for &(a, b) in overlay {
                if a == c && step(b, &mut seen, &mut stack) {
                    return true;
                }
            }
        }
        false
    }

    /// Would adding the dependency chain of a path create a cycle?
    ///
    /// `chain` is the path's consecutive channel pairs. Only genuinely new
    /// edges can create a cycle; existing edges are skipped (the CDG was
    /// acyclic before).
    pub fn would_cycle(&self, chain: &[(DirLink, DirLink)]) -> bool {
        let mut new_edges: Vec<(u32, u32)> = Vec::new();
        for &(a, b) in chain {
            if !self.has_edge(a, b) {
                new_edges.push((a.index() as u32, b.index() as u32));
            }
        }
        // Adding edge (a, b) creates a cycle iff a is reachable from b over
        // existing + other new edges. Check each new edge against the full
        // overlay.
        for i in 0..new_edges.len() {
            let (a, b) = new_edges[i];
            if self.reaches(b, a, &new_edges) {
                return true;
            }
            let _ = i;
        }
        false
    }

    /// Adds a path's dependency chain (caller must have checked
    /// [`Cdg::would_cycle`] to preserve acyclicity).
    pub fn add_chain(&mut self, chain: &[(DirLink, DirLink)]) {
        for &(a, b) in chain {
            let (ai, bi) = (a.index() as u32, b.index() as u32);
            if self.edges.insert(self.key(ai, bi)) {
                self.adj[ai as usize].push(bi);
            }
        }
    }

    /// Kahn's algorithm acyclicity check over the whole CDG.
    pub fn is_acyclic(&self) -> bool {
        let mut indeg = vec![0u32; self.n];
        for outs in &self.adj {
            for &b in outs {
                indeg[b as usize] += 1;
            }
        }
        let mut queue: Vec<u32> = (0..self.n as u32)
            .filter(|&c| indeg[c as usize] == 0)
            .collect();
        let mut removed = 0usize;
        while let Some(c) = queue.pop() {
            removed += 1;
            for &b in &self.adj[c as usize] {
                indeg[b as usize] -= 1;
                if indeg[b as usize] == 0 {
                    queue.push(b);
                }
            }
        }
        removed == self.n
    }
}

/// Converts a sequence of directed ISL hops into its dependency chain.
pub fn chain_of(hops: &[DirLink]) -> Vec<(DirLink, DirLink)> {
    hops.windows(2).map(|w| (w[0], w[1])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hxtopo::LinkId;

    fn dl(i: u32) -> DirLink {
        DirLink::new(LinkId(i), true)
    }

    #[test]
    fn empty_cdg_is_acyclic() {
        let c = Cdg::new(10);
        assert!(c.is_acyclic());
        assert_eq!(c.num_edges(), 0);
    }

    #[test]
    fn chain_addition_and_dedup() {
        let mut c = Cdg::new(20);
        let chain = chain_of(&[dl(0), dl(1), dl(2)]);
        assert_eq!(chain.len(), 2);
        assert!(!c.would_cycle(&chain));
        c.add_chain(&chain);
        assert_eq!(c.num_edges(), 2);
        c.add_chain(&chain); // idempotent
        assert_eq!(c.num_edges(), 2);
        assert!(c.has_edge(dl(0), dl(1)));
        assert!(c.is_acyclic());
    }

    #[test]
    fn cycle_detected() {
        let mut c = Cdg::new(20);
        c.add_chain(&chain_of(&[dl(0), dl(1)]));
        c.add_chain(&chain_of(&[dl(1), dl(2)]));
        // 2 -> 0 closes the cycle.
        assert!(c.would_cycle(&chain_of(&[dl(2), dl(0)])));
        // 0 -> 2 already implied transitively: no cycle.
        assert!(!c.would_cycle(&chain_of(&[dl(0), dl(2)])));
    }

    #[test]
    fn self_cycle_within_one_chain() {
        let c = Cdg::new(20);
        // A chain that revisits a channel: a -> b -> a is a cycle by itself.
        assert!(c.would_cycle(&[(dl(0), dl(1)), (dl(1), dl(0))]));
    }

    #[test]
    fn triangle_credit_loop() {
        // The paper's Section 3.2 triangle example: routing A->C via B while
        // B->C via A creates the dependency cycle the paper warns about.
        let mut c = Cdg::new(10);
        // Channels: 0 = A->B, 1 = B->C, 2 = B->A, 3 = A->C ... model the
        // problematic pair: holding A->B requesting B->A-side channels.
        c.add_chain(&[(dl(0), dl(1))]); // A->B->C
        assert!(c.would_cycle(&[(dl(1), dl(0))]));
        assert!(c.is_acyclic());
    }

    #[test]
    fn kahn_detects_added_cycle() {
        let mut c = Cdg::new(5);
        // Bypass would_cycle deliberately.
        c.add_chain(&[(dl(0), dl(1))]);
        c.add_chain(&[(dl(1), dl(0))]);
        assert!(!c.is_acyclic());
    }

    #[test]
    fn chain_of_short_paths() {
        assert!(chain_of(&[dl(0)]).is_empty());
        assert!(chain_of(&[]).is_empty());
    }
}
