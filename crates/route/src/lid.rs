//! InfiniBand-style local identifier (LID) space with LID mask control (LMC).
//!
//! IB switches forward by *destination LID*. Each HCA port owns a base LID
//! plus `2^LMC - 1` consecutive extra LIDs; the subnet manager computes
//! forwarding entries for every LID as if it were a distinct endpoint, which
//! is the multi-pathing mechanism PARX builds on (paper Section 3.2.1).

use hxtopo::hyperx::Quadrant;
use hxtopo::{NodeId, Topology};

/// A local identifier. LID 0 is reserved (invalid), as in InfiniBand.
pub type Lid = u32;

/// How LIDs are laid out over the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LidPolicy {
    /// Dense sequential assignment: node `i` owns LIDs
    /// `1 + i*2^lmc .. 1 + (i+1)*2^lmc`.
    Sequential,
    /// The paper's PARX artifact policy for 2-D HyperX systems: nodes in
    /// quadrant `q` own LIDs in `[q*1000, (q+1)*1000)`, so the messaging
    /// layer can recover the quadrant as `q = lid / 1000` (paper footnote 9).
    QuadrantBlocks,
}

/// Mapping between nodes and their LID ranges.
#[derive(Debug, Clone)]
pub struct LidMap {
    /// LID mask control: each node owns `2^lmc` LIDs.
    pub lmc: u8,
    policy: LidPolicy,
    /// Base LID per node.
    base: Vec<Lid>,
    /// Owner node per LID (dense over the LID space), `u32::MAX` = unowned.
    owner: Vec<u32>,
}

impl LidMap {
    /// Builds a LID map for a topology.
    ///
    /// `QuadrantBlocks` requires a 2-D even-dimension HyperX topology and at
    /// most 1000 LIDs worth of nodes per quadrant.
    pub fn new(topo: &Topology, lmc: u8, policy: LidPolicy) -> LidMap {
        assert!(lmc <= 7, "IB allows LMC up to 7");
        let per_node = 1u32 << lmc;
        let n = topo.num_nodes();
        let mut base = vec![0u32; n];
        match policy {
            LidPolicy::Sequential => {
                for (i, b) in base.iter_mut().enumerate() {
                    *b = 1 + (i as u32) * per_node;
                }
            }
            LidPolicy::QuadrantBlocks => {
                let hx = topo
                    .meta
                    .as_hyperx()
                    .expect("QuadrantBlocks requires a HyperX topology");
                let mut next = [0u32; 4]; // next free slot per quadrant
                for node in topo.nodes() {
                    let q = hx
                        .quadrant(topo.node_switch(node).0)
                        .expect("QuadrantBlocks requires a 2-D even-extent HyperX")
                        .index();
                    let lid =
                        q as u32 * 1000 + next[q] * per_node + if q == 0 { per_node } else { 0 };
                    // Quadrant 0 starts at LID per_node to keep LID 0 reserved.
                    assert!(
                        lid + per_node <= (q as u32 + 1) * 1000,
                        "quadrant {q} LID block overflow"
                    );
                    base[node.idx()] = lid;
                    next[q] += 1;
                }
            }
        }
        let max_lid = base.iter().map(|&b| b + per_node).max().unwrap_or(1);
        let mut owner = vec![u32::MAX; max_lid as usize];
        for (i, &b) in base.iter().enumerate() {
            for x in 0..per_node {
                owner[(b + x) as usize] = i as u32;
            }
        }
        LidMap {
            lmc,
            policy,
            base,
            owner,
        }
    }

    /// Number of LIDs each node owns.
    #[inline]
    pub fn lids_per_node(&self) -> u32 {
        1 << self.lmc
    }

    /// Size of the LID space (exclusive upper bound on valid LIDs).
    #[inline]
    pub fn lid_space(&self) -> usize {
        self.owner.len()
    }

    /// Base LID of a node.
    #[inline]
    pub fn base(&self, n: NodeId) -> Lid {
        self.base[n.idx()]
    }

    /// The `x`-th LID of a node (`x < 2^lmc`).
    #[inline]
    pub fn lid(&self, n: NodeId, x: u32) -> Lid {
        debug_assert!(x < self.lids_per_node());
        self.base[n.idx()] + x
    }

    /// Owner of a LID, if any.
    #[inline]
    pub fn owner(&self, lid: Lid) -> Option<NodeId> {
        self.owner
            .get(lid as usize)
            .and_then(|&o| (o != u32::MAX).then_some(NodeId(o)))
    }

    /// LID index (`0..2^lmc`) of a LID within its owner's block.
    #[inline]
    pub fn lid_index(&self, lid: Lid) -> Option<u32> {
        let n = self.owner(lid)?;
        Some(lid - self.base[n.idx()])
    }

    /// All valid destination LIDs with their owners.
    pub fn lids(&self) -> impl Iterator<Item = (Lid, NodeId)> + '_ {
        self.owner
            .iter()
            .enumerate()
            .filter_map(|(l, &o)| (o != u32::MAX).then_some((l as Lid, NodeId(o))))
    }

    /// Recovers a quadrant from a LID under the [`LidPolicy::QuadrantBlocks`]
    /// policy (`q = lid / 1000`), as the paper's modified bfo PML does.
    pub fn quadrant_of_lid(&self, lid: Lid) -> Option<Quadrant> {
        if self.policy != LidPolicy::QuadrantBlocks {
            return None;
        }
        let q = Quadrant::try_from((lid / 1000) as usize).ok()?;
        self.owner(lid).is_some().then_some(q)
    }

    /// The layout policy.
    pub fn policy(&self) -> LidPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hxtopo::hyperx::HyperXConfig;

    fn hx() -> Topology {
        HyperXConfig::t2_hyperx(672).build()
    }

    #[test]
    fn sequential_layout() {
        let t = hx();
        let m = LidMap::new(&t, 2, LidPolicy::Sequential);
        assert_eq!(m.lids_per_node(), 4);
        assert_eq!(m.base(NodeId(0)), 1);
        assert_eq!(m.base(NodeId(1)), 5);
        assert_eq!(m.lid(NodeId(1), 3), 8);
        assert_eq!(m.owner(0), None); // LID 0 reserved
        assert_eq!(m.owner(1), Some(NodeId(0)));
        assert_eq!(m.owner(8), Some(NodeId(1)));
        assert_eq!(m.lid_index(8), Some(3));
    }

    #[test]
    fn quadrant_blocks_match_topology_quadrants() {
        let t = hx();
        let hxm = t.meta.as_hyperx().unwrap().clone();
        let m = LidMap::new(&t, 2, LidPolicy::QuadrantBlocks);
        for node in t.nodes() {
            let q_topo = hxm.quadrant(t.node_switch(node).0).unwrap();
            for x in 0..4 {
                let lid = m.lid(node, x);
                assert_eq!(m.quadrant_of_lid(lid), Some(q_topo), "node {node}");
                assert_eq!(m.owner(lid), Some(node));
            }
        }
    }

    #[test]
    fn quadrant_blocks_fit_1000_per_quadrant() {
        let t = hx();
        let m = LidMap::new(&t, 2, LidPolicy::QuadrantBlocks);
        // 168 nodes per quadrant x 4 LIDs = 672 <= 1000.
        assert!(m.lid_space() <= 4000);
        assert_eq!(m.owner(0), None);
    }

    #[test]
    fn lids_iterator_counts() {
        let t = hx();
        let m = LidMap::new(&t, 2, LidPolicy::Sequential);
        assert_eq!(m.lids().count(), 672 * 4);
        let m0 = LidMap::new(&t, 0, LidPolicy::Sequential);
        assert_eq!(m0.lids().count(), 672);
        assert_eq!(m0.lids_per_node(), 1);
    }

    #[test]
    fn sequential_has_no_quadrants() {
        let t = hx();
        let m = LidMap::new(&t, 2, LidPolicy::Sequential);
        assert_eq!(m.quadrant_of_lid(1), None);
    }
}
