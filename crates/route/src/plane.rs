//! Sharded per-plane path storage for multi-plane (multi-rail) fabrics.
//!
//! A K-plane HyperX system runs K independent subnets: each plane has its
//! own topology instance, forwarding state and epoch-versioned
//! [`PathDb`]. [`PlaneSet`] is the cheap shared handle over those shards —
//! one slot per plane, each holding the plane's current `Arc<PathDb>`
//! behind its own lock, so a subnet sweep on plane 2 publishes a new epoch
//! there without stalling resolutions on planes 0, 1 and 3. Campaign
//! engines propagate epochs per shard ([`PlaneSet::install`]); consumers
//! snapshot a shard ([`PlaneSet::shard`]) and resolve lock-free against
//! the immutable store.

use crate::lft::{DirLink, RouteError, Routes};
use crate::lid::Lid;
use crate::pathdb::PathDb;
use hxtopo::{NodeId, Topology};
use std::sync::{Arc, RwLock};

/// Shared handle over per-plane [`PathDb`] shards. Clones are shallow:
/// every clone sees the same live shards, so an `install` on one handle is
/// visible to all.
#[derive(Clone)]
pub struct PlaneSet {
    shards: Arc<Vec<RwLock<Arc<PathDb>>>>,
}

impl PlaneSet {
    /// Wraps already-built per-plane stores, in plane order.
    pub fn new(dbs: Vec<Arc<PathDb>>) -> PlaneSet {
        PlaneSet {
            shards: Arc::new(dbs.into_iter().map(RwLock::new).collect()),
        }
    }

    /// Builds one shard per `(topology, routes)` plane at `epoch`, reusing
    /// the chunked parallel [`PathDb::build`] per shard (`threads == 0` =
    /// auto). Fails on the first unroutable plane, lowest plane index
    /// first.
    pub fn build(
        planes: &[(&Topology, &Routes)],
        epoch: u64,
        threads: usize,
    ) -> Result<PlaneSet, RouteError> {
        let mut dbs = Vec::with_capacity(planes.len());
        for (topo, routes) in planes {
            dbs.push(Arc::new(PathDb::build(topo, routes, epoch, threads)?));
        }
        Ok(PlaneSet::new(dbs))
    }

    /// Number of planes.
    pub fn num_planes(&self) -> usize {
        self.shards.len()
    }

    /// Snapshot of one plane's current store (cheap `Arc` clone);
    /// resolution against the snapshot is lock-free and immune to
    /// concurrent installs.
    pub fn shard(&self, plane: usize) -> Arc<PathDb> {
        self.shards[plane].read().unwrap().clone()
    }

    /// Publishes a new store for one plane (live epoch propagation after a
    /// per-plane sweep or fail-in-place patch); other shards are
    /// untouched.
    pub fn install(&self, plane: usize, db: Arc<PathDb>) {
        *self.shards[plane].write().unwrap() = db;
    }

    /// Current epoch of one plane's shard.
    pub fn epoch(&self, plane: usize) -> u64 {
        self.shards[plane].read().unwrap().epoch()
    }

    /// Current epochs of every shard, in plane order.
    pub fn epochs(&self) -> Vec<u64> {
        (0..self.num_planes()).map(|p| self.epoch(p)).collect()
    }

    /// Resolves a full node-to-node path on one plane into a caller
    /// buffer — same contract as [`PathDb::node_path_into`].
    pub fn node_path_into(
        &self,
        plane: usize,
        src: NodeId,
        dst_lid: Lid,
        out: &mut Vec<DirLink>,
    ) -> bool {
        self.shards[plane]
            .read()
            .unwrap()
            .node_path_into(src, dst_lid, out)
    }

    /// Summed approximate heap footprint of every shard's store, in bytes.
    pub fn approx_bytes(&self) -> usize {
        (0..self.num_planes())
            .map(|p| self.shard(p).approx_bytes())
            .sum()
    }
}

impl std::fmt::Debug for PlaneSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlaneSet")
            .field("planes", &self.num_planes())
            .field("epochs", &self.epochs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::{Dfsssp, MinHop, RoutingEngine};
    use hxtopo::hyperx::HyperXConfig;

    #[test]
    fn shards_are_independent() {
        let t = HyperXConfig::new(vec![3, 3], 2).build();
        let r0 = MinHop::default().route(&t).unwrap();
        let r1 = Dfsssp::default().route(&t).unwrap();
        let set = PlaneSet::build(&[(&t, &r0), (&t, &r1)], 1, 0).unwrap();
        assert_eq!(set.num_planes(), 2);
        assert_eq!(set.epochs(), vec![1, 1]);

        // Install a bumped store on plane 1 only.
        let bumped = Arc::new(set.shard(1).patched(&t, &r1, &[]).unwrap());
        set.install(1, bumped);
        assert_eq!(set.epochs(), vec![1, 2]);

        // Clones share the same live shards.
        let clone = set.clone();
        assert_eq!(clone.epoch(1), 2);

        // Per-plane resolution matches the shard's own store.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for plane in 0..2 {
            let db = set.shard(plane);
            for src in t.nodes() {
                for lid in 0..db.lid_space() as Lid {
                    assert_eq!(
                        set.node_path_into(plane, src, lid, &mut a),
                        db.node_path_into(src, lid, &mut b)
                    );
                    assert_eq!(a, b);
                }
            }
        }
        assert!(set.approx_bytes() > 0);
    }
}
