//! Deadlock-Free SSSP routing (Domke, Hoefler, Nagel, IPDPS'11): SSSP path
//! calculation followed by partitioning all source-destination paths into
//! virtual lanes whose channel dependency graphs stay acyclic.
//!
//! This is the routing the paper deploys on the HyperX plane (combos 3 and
//! 4); on their 12x8 HyperX it required 3 of the 8 available VLs
//! (Section 4.4.3).

use super::{assign_vls, fill_weighted_minimal, RoutingEngine};
use crate::lft::{RouteError, Routes};
use crate::lid::{LidMap, LidPolicy};
use hxtopo::Topology;

/// DFSSSP configuration.
#[derive(Debug, Clone)]
pub struct Dfsssp {
    /// LID mask control.
    pub lmc: u8,
    /// Hardware virtual-lane limit (QDR Voltaire gear: 8).
    pub max_vls: u8,
}

impl Default for Dfsssp {
    fn default() -> Self {
        Dfsssp { lmc: 0, max_vls: 8 }
    }
}

impl RoutingEngine for Dfsssp {
    fn name(&self) -> &'static str {
        "dfsssp"
    }

    fn route(&self, topo: &Topology) -> Result<Routes, RouteError> {
        let lid_map = LidMap::new(topo, self.lmc, LidPolicy::Sequential);
        let mut routes = Routes::new(topo, lid_map, "dfsssp");
        fill_weighted_minimal(topo, &mut routes, 1)?;
        assign_vls(topo, &mut routes, self.max_vls)?;
        Ok(routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_deadlock_free, verify_paths};
    use hxtopo::fattree::FatTreeConfig;
    use hxtopo::hyperx::HyperXConfig;

    #[test]
    fn dfsssp_hyperx_is_deadlock_free() {
        let t = HyperXConfig::new(vec![4, 4], 2).build();
        let r = Dfsssp::default().route(&t).unwrap();
        verify_paths(&t, &r).unwrap();
        let vls = verify_deadlock_free(&t, &r).unwrap();
        assert!(vls <= 8);
        assert_eq!(vls, r.num_vls);
    }

    #[test]
    fn dfsssp_needs_few_vls_on_hyperx() {
        // The paper reports 3 VLs for the 12x8 HyperX; a 6x4 slice should
        // need no more.
        let t = HyperXConfig::new(vec![6, 4], 2).build();
        let r = Dfsssp::default().route(&t).unwrap();
        assert!(r.num_vls <= 3, "needed {} VLs", r.num_vls);
        verify_deadlock_free(&t, &r).unwrap();
    }

    #[test]
    fn dfsssp_fattree_single_vl() {
        // Minimal paths on a folded Clos are up*/down*, whose CDG is acyclic
        // with one VL.
        let t = FatTreeConfig::k_ary_n_tree(4, 2);
        let r = Dfsssp::default().route(&t).unwrap();
        assert_eq!(r.num_vls, 1);
        verify_deadlock_free(&t, &r).unwrap();
    }

    #[test]
    fn dfsssp_faulted_hyperx_stays_deadlock_free() {
        use hxtopo::faults::FaultPlan;
        let mut t = HyperXConfig::t2_hyperx(140).build();
        FaultPlan::t2_hyperx().apply(&mut t);
        let r = Dfsssp::default().route(&t).unwrap();
        verify_paths(&t, &r).unwrap();
        verify_deadlock_free(&t, &r).unwrap();
    }

    #[test]
    fn k8_single_hop_fits_one_vl() -> Result<(), RouteError> {
        // Minimal one-hop paths in a complete graph have no ISL-to-ISL
        // dependencies, so one VL suffices. The error is propagated, not
        // swallowed by a panic, so a failure surfaces the real RouteError.
        let t = HyperXConfig::new(vec![8], 1).build(); // K8 complete graph
        let r = Dfsssp { lmc: 0, max_vls: 1 }.route(&t)?;
        assert_eq!(r.num_vls, 1);
        Ok(())
    }

    #[test]
    fn vl_overflow_reported() {
        // A 2-D HyperX has two-hop minimal paths whose CDG is cyclic on one
        // lane; max_vls = 1 must overflow with the typed error (regression:
        // this used to be unreachable behind a catch-all panic).
        let t = HyperXConfig::new(vec![4, 4], 2).build();
        let err = Dfsssp { lmc: 0, max_vls: 1 }.route(&t).unwrap_err();
        match err {
            RouteError::VlOverflow {
                required,
                available,
            } => {
                assert_eq!(available, 1);
                assert!(required > 1, "required {required}");
            }
            other => panic!("expected VlOverflow, got {other}"),
        }
    }
}
