//! FatPaths layered routing (Besta et al., "FatPaths: Routing in
//! Supercomputers and Data Centers when Shortest Paths Fall Short"),
//! mapped onto the InfiniBand LMC machinery: `k` *layers*, each a
//! near-complete copy of the fabric with a deterministic pseudo-random
//! subset of ISLs removed, each routed minimally within what remains —
//! *almost-minimal* path diversity with plain destination-based
//! forwarding. Layer `x` owns LID offset `x` of every node's `2^lmc`
//! block, so a flow-hashing PML (see `hxmpi::Pml`) spreads flows across
//! layers with zero per-packet state.
//!
//! Layer 0 keeps the full lattice (pure minimal routing, the safety
//! net); layers `x > 0` drop roughly `1/div` of the ISLs, selected by an
//! FNV-1a hash of `(seed, layer, link)` so layers are deterministic,
//! distinct, and independent of topology mutation order. Switches a
//! layer's removal disconnects fall back to their full-lattice minimal
//! entry (the same footnote-7 trick PARX uses), which cannot loop: a
//! masked-reachable successor never routes back through a
//! masked-unreachable switch.
//!
//! Deadlock freedom comes from the shared lowest-acyclic-VL assignment
//! over *all* layers' paths, exactly like DFSSSP/PARX.

use super::{assign_vls, install_tree, walk_lft, IncrementalRepair, Multipath, RoutingEngine};
use crate::dijkstra::{dijkstra_to_dest, EdgeWeights};
use crate::lft::{RouteError, Routes};
use crate::lid::{LidMap, LidPolicy};
use hxtopo::{LinkClass, NodeId, Topology};

/// FatPaths layered almost-minimal multipath. Works on any topology
/// (the paper targets low-diameter networks; HyperX qualifies).
#[derive(Debug, Clone)]
pub struct FatPaths {
    /// Layer count; must be a power of two (one layer per LID offset,
    /// `lmc = log2(layers)`).
    pub layers: u8,
    /// Denominator of the per-layer ISL removal fraction: each layer
    /// `x > 0` drops ~`1/div` of the inter-switch cables.
    pub div: u32,
    /// Seed of the deterministic layer masks.
    pub seed: u64,
    /// Virtual lanes available for deadlock-free layering.
    pub max_vls: u8,
}

impl Default for FatPaths {
    fn default() -> FatPaths {
        FatPaths {
            layers: 4,
            div: 8,
            seed: 0xFA7B,
            max_vls: 8,
        }
    }
}

/// FNV-1a over a few words — the layer-mask selector.
fn fnv(vals: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in vals {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl FatPaths {
    fn lmc(&self) -> Result<u8, RouteError> {
        if !self.layers.is_power_of_two() {
            return Err(RouteError::UnsupportedTopology(
                "FatPaths layer count must be a power of two (one layer per LMC LID offset)",
            ));
        }
        Ok(self.layers.trailing_zeros() as u8)
    }

    /// The layer's cable mask: `true` = usable. Layer 0 is unmasked.
    /// Public for diagnostics and the layer-correctness proptests.
    pub fn layer_mask(&self, topo: &Topology, layer: u8) -> Vec<bool> {
        topo.links()
            .map(|(id, l)| {
                l.class == LinkClass::Terminal
                    || layer == 0
                    || !fnv(&[self.seed, layer as u64, id.0 as u64]).is_multiple_of(self.div as u64)
            })
            .collect()
    }
}

impl RoutingEngine for FatPaths {
    fn name(&self) -> &'static str {
        "fatpaths"
    }

    fn route(&self, topo: &Topology) -> Result<Routes, RouteError> {
        let lmc = self.lmc()?;
        let lid_map = LidMap::new(topo, lmc, LidPolicy::Sequential);
        let mut routes = Routes::new(topo, lid_map, "fatpaths");
        for layer in 0..self.layers {
            self.route_layer(topo, &mut routes, layer)?;
        }
        assign_vls(topo, &mut routes, self.max_vls)?;
        Ok(routes)
    }

    fn incremental(&self) -> Option<&dyn IncrementalRepair> {
        None // churn goes through the manager's generic load-aware patch
    }

    fn multipath(&self) -> Option<&dyn Multipath> {
        Some(self)
    }
}

impl Multipath for FatPaths {
    fn layers(&self) -> u8 {
        self.layers
    }

    fn route_layer(
        &self,
        topo: &Topology,
        routes: &mut Routes,
        layer: u8,
    ) -> Result<(), RouteError> {
        if layer as u32 >= routes.lid_map.lids_per_node() {
            return Err(RouteError::UnsupportedTopology(
                "layer index exceeds the LID block (routes not built by FatPaths?)",
            ));
        }
        let mask = self.layer_mask(topo, layer);
        let mut weights = EdgeWeights::new(topo);
        let nodes: Vec<NodeId> = topo.nodes().collect();
        for &nd in &nodes {
            let lid = routes.lid_map.lid(nd, layer as u32);
            let (dsw, dlink) = topo.node_switch(nd);
            let tree = dijkstra_to_dest(topo, dsw, &weights, Some(&mask));
            install_tree(routes, &tree, lid, dlink);
            // Footnote-7 fallback: switches this layer's removal cut off
            // keep their full-lattice minimal entry.
            if topo.switches().any(|s| s != dsw && !tree.reachable(s)) {
                let full = dijkstra_to_dest(topo, dsw, &weights, None);
                for s in topo.switches() {
                    if s != dsw && !tree.reachable(s) {
                        if let Some(link) = full.out[s.idx()] {
                            routes.set(s, lid, link);
                        }
                    }
                }
            }
            // Intra-layer balancing, SSSP-style: later trees avoid the
            // cables earlier trees loaded.
            for &src in &nodes {
                if src == nd {
                    continue;
                }
                let (ssw, _) = topo.node_switch(src);
                if ssw == dsw {
                    continue;
                }
                walk_lft(topo, routes, ssw, lid, |dl| weights.add(dl, 1))?;
            }
        }
        Ok(())
    }
}

/// Path-diversity audit used by tests and the tournament commentary:
/// for every cross-switch node pair, the number of distinct first ISLs
/// its per-layer paths take, averaged over pairs. 1.0 = every layer
/// funnels into the same cable; higher = real multipath.
pub fn mean_first_hop_diversity(topo: &Topology, routes: &Routes) -> f64 {
    let per_node = routes.lid_map.lids_per_node();
    let mut pairs = 0u64;
    let mut distinct = 0u64;
    for src in topo.nodes() {
        let (ssw, _) = topo.node_switch(src);
        for dst in topo.nodes() {
            let (dsw, _) = topo.node_switch(dst);
            if ssw == dsw {
                continue;
            }
            let mut firsts: Vec<u32> = Vec::with_capacity(per_node as usize);
            for x in 0..per_node {
                let lid = routes.lid_map.lid(dst, x);
                let mut first = None;
                let _ = walk_lft(topo, routes, ssw, lid, |dl| {
                    first.get_or_insert(dl.link().0);
                });
                if let Some(f) = first {
                    firsts.push(f);
                }
            }
            firsts.sort_unstable();
            firsts.dedup();
            pairs += 1;
            distinct += firsts.len() as u64;
        }
    }
    distinct as f64 / pairs.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_deadlock_free, verify_paths};
    use hxtopo::hyperx::HyperXConfig;

    #[test]
    fn four_layers_route_all_pairs_deadlock_free() {
        let t = HyperXConfig::new(vec![4, 4], 2).build();
        let r = FatPaths::default().route(&t).unwrap();
        assert_eq!(r.lid_map.lids_per_node(), 4);
        let stats = verify_paths(&t, &r).unwrap();
        // (source node, destination LID) pairs: 4 LIDs per destination.
        assert_eq!(stats.pairs, 32 * 31 * 4);
        verify_deadlock_free(&t, &r).unwrap();
    }

    #[test]
    fn layers_spread_first_hops() {
        let t = HyperXConfig::new(vec![4, 4], 2).build();
        let r = FatPaths::default().route(&t).unwrap();
        let div = mean_first_hop_diversity(&t, &r);
        assert!(div > 1.2, "layers collapsed onto one path: {div:.2}");
    }

    #[test]
    fn rejects_non_power_of_two_layers() {
        let t = HyperXConfig::new(vec![2, 2], 1).build();
        let bad = FatPaths {
            layers: 3,
            ..FatPaths::default()
        };
        assert!(matches!(
            bad.route(&t),
            Err(RouteError::UnsupportedTopology(_))
        ));
    }

    #[test]
    fn single_layer_is_plain_minimal() {
        let t = HyperXConfig::new(vec![3, 3], 1).build();
        let one = FatPaths {
            layers: 1,
            ..FatPaths::default()
        };
        let r = one.route(&t).unwrap();
        assert_eq!(r.lid_map.lids_per_node(), 1);
        verify_paths(&t, &r).unwrap();
    }

    #[test]
    fn works_on_fat_tree_too() {
        let t = hxtopo::fattree::FatTreeConfig::tsubame2(28);
        let r = FatPaths::default().route(&t).unwrap();
        verify_paths(&t, &r).unwrap();
        verify_deadlock_free(&t, &r).unwrap();
    }
}
