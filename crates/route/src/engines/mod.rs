//! Routing engines producing InfiniBand-style forwarding state.
//!
//! | engine | paper role |
//! |---|---|
//! | [`Ftree`] | OpenSM `ftree` — the Fat-Tree baseline (combo 1) |
//! | [`Sssp`] | OpenSM SSSP (Hoefler'09) — faulty-Fat-Tree combo 2 |
//! | [`Dfsssp`] | deadlock-free SSSP (Domke'11) — HyperX combos 3 & 4 |
//! | [`Parx`] | the paper's contribution — HyperX combo 5 |
//! | [`UpDown`] | Up*/Down* — classic deadlock-free reference |
//! | [`MinHop`] | unbalanced hop-minimal baseline for ablations |
//! | [`Lash`] | LASH — cited deadlock-free alternative (unbalanced + VLs) |
//! | [`ParxNd`] | extension: PARX generalized to n-dimensional HyperX |
//! | [`FtHyperX`] | fault-tolerant HyperX routing (Camarero/Cano, arXiv 2404.04315) |
//! | [`FatPaths`] | FatPaths layered multipath (Besta et al.), one layer per LID offset |
//!
//! Beyond the static sweep every engine provides, two opt-in capability
//! traits refine fault handling and multipath (DESIGN.md §13):
//! [`IncrementalRepair`] lets an engine own its `fail_link`/`recover_link`
//! patches (the subnet manager's load-aware Dijkstra repair is the generic
//! fallback), and [`Multipath`] exposes per-layer routing over the LMC LID
//! block. [`engine_by_name`] / [`engine_from_env`] resolve the
//! `$T2HX_ENGINE` knob the way `SolverKind::from_env` resolves
//! `$T2HX_SOLVER`.

mod dfsssp;
mod fatpaths;
mod ft_hyperx;
mod ftree;
mod lash;
mod minhop;
mod parx;
mod parx_nd;
mod sssp;
mod updown;

pub use dfsssp::Dfsssp;
pub use fatpaths::{mean_first_hop_diversity, FatPaths};
pub use ft_hyperx::FtHyperX;
pub use ftree::Ftree;
pub use lash::Lash;
pub use minhop::MinHop;
pub use parx::Parx;
pub use parx_nd::{select_lid_nd, HalfRule, ParxNd};
pub use sssp::Sssp;
pub use updown::UpDown;

use crate::cdg::{chain_of, Cdg};
use crate::demand::Demand;
use crate::dijkstra::{DestTree, EdgeWeights};
use crate::lft::{DirLink, RouteError, Routes};
use crate::lid::Lid;
use hxtopo::{Endpoint, LinkId, NodeId, SwitchId, Topology};

/// A static routing engine: consumes a topology, produces complete
/// forwarding state. Fault handling and multipath are opt-in capabilities
/// discovered through the accessor methods, so the subnet manager can
/// dispatch on a `Box<dyn RoutingEngine>` without downcasts.
pub trait RoutingEngine {
    /// Engine name as it appears in reports (mirrors the paper's labels).
    fn name(&self) -> &'static str;

    /// Computes forwarding tables (and, for deadlock-free engines, the
    /// service-level table).
    fn route(&self, topo: &Topology) -> Result<Routes, RouteError>;

    /// The engine-owned incremental-repair capability, when implemented.
    /// `None` (the default) sends cable churn to the subnet manager's
    /// generic load-aware Dijkstra patch.
    fn incremental(&self) -> Option<&dyn IncrementalRepair> {
        None
    }

    /// The per-layer multipath capability, when implemented. `None` (the
    /// default) means the engine's LID block carries no layer structure.
    fn multipath(&self) -> Option<&dyn Multipath> {
        None
    }

    /// A demand-aware variant of this engine for the SAR/PARX reroute
    /// trigger, or `None` when the engine cannot ingest a communication
    /// profile (the subnet manager then reports the error instead of
    /// silently reboxing a different engine).
    fn with_demand(&self, demand: Demand) -> Option<Box<dyn RoutingEngine>> {
        let _ = demand;
        None
    }
}

/// A sparse LFT patch an [`IncrementalRepair`] engine hands back from
/// `on_fail`/`on_recover`: the entry rewrites to apply plus the LID trees
/// whose paths they change (what the `PathDb` must re-extract).
#[derive(Debug, Clone, Default)]
pub struct LftDelta {
    /// `(switch, lid, new out-link)` rewrites; `None` clears the entry
    /// (the destination became unreachable from that switch).
    pub entries: Vec<(SwitchId, Lid, Option<LinkId>)>,
    /// Destination LIDs whose trees the entries touch, deduplicated.
    pub touched: Vec<Lid>,
}

impl LftDelta {
    /// Whether the delta rewrites anything at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.touched.is_empty()
    }

    /// Applies every entry rewrite to the forwarding state.
    pub fn apply(&self, routes: &mut Routes) {
        for &(s, lid, out) in &self.entries {
            match out {
                Some(link) => routes.set(s, lid, link),
                None => routes.clear(s, lid),
            }
        }
    }
}

/// Engine-owned incremental repair: the engine patches its *own* routing
/// function around a failed or restored cable, so the repaired LFTs stay
/// bit-identical to a from-scratch resweep (which the generic load-aware
/// fallback cannot promise). `topo` already reflects the event: the cable
/// is deactivated before `on_fail` and reactivated before `on_recover`.
pub trait IncrementalRepair {
    /// Patch around the (already deactivated) cable `l`. Errs when the
    /// fabric became unroutable — the manager then falls back and rolls
    /// the event back.
    fn on_fail(&self, topo: &Topology, routes: &Routes, l: LinkId) -> Result<LftDelta, RouteError>;

    /// Patch to exploit the (already reactivated) cable `l`.
    fn on_recover(
        &self,
        topo: &Topology,
        routes: &Routes,
        l: LinkId,
    ) -> Result<LftDelta, RouteError>;
}

/// Per-layer multipath over the LMC block: layer `x` of `layers()` routes
/// destination LID `base + x`, so a PML picking LID offsets (round-robin,
/// flow hash) spreads flows across the layers.
pub trait Multipath {
    /// Number of layers, one per LID offset (`2^lmc`).
    fn layers(&self) -> u8;

    /// Routes every destination's layer-`layer` LID into `routes`, which
    /// must come from this engine's LID layout.
    fn route_layer(
        &self,
        topo: &Topology,
        routes: &mut Routes,
        layer: u8,
    ) -> Result<(), RouteError>;
}

/// Engine names [`engine_by_name`] resolves, in tournament order: the
/// paper's HyperX contenders first, then the baseline field.
pub const ENGINE_NAMES: &[&str] = &[
    "parx",
    "dfsssp",
    "ft-hyperx",
    "fatpaths",
    "sssp",
    "minhop",
    "updown",
    "lash",
];

/// Resolves an engine by its report label (case-insensitive). Covers every
/// engine in [`ENGINE_NAMES`] plus the topology-specific `ftree` and
/// `parx-nd`.
pub fn engine_by_name(name: &str) -> Option<Box<dyn RoutingEngine>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "parx" => Box::new(Parx::default()),
        "parx-nd" => Box::new(ParxNd::default()),
        "dfsssp" => Box::new(Dfsssp::default()),
        "ft-hyperx" | "fthyperx" => Box::new(FtHyperX::default()),
        "fatpaths" => Box::new(FatPaths::default()),
        "sssp" => Box::new(Sssp::default()),
        "minhop" => Box::new(MinHop::default()),
        "updown" => Box::new(UpDown::default()),
        "lash" => Box::new(Lash::default()),
        "ftree" => Box::new(Ftree),
        _ => return None,
    })
}

/// The `$T2HX_ENGINE` knob, mirroring `SolverKind::from_env` /
/// `$T2HX_SOLVER`: `None` when unset or unrecognized (callers keep their
/// default engine).
pub fn engine_from_env() -> Option<Box<dyn RoutingEngine>> {
    std::env::var("T2HX_ENGINE")
        .ok()
        .and_then(|v| engine_by_name(&v))
}

/// Installs one destination tree into the LFTs: every reachable switch
/// forwards `lid` along the tree; the destination switch forwards to the
/// terminal cable.
pub(crate) fn install_tree(
    routes: &mut Routes,
    tree: &DestTree,
    lid: Lid,
    dst_terminal: hxtopo::LinkId,
) {
    for (s, out) in tree.out.iter().enumerate() {
        if let Some(link) = out {
            routes.set(SwitchId::from_idx(s), lid, *link);
        }
    }
    routes.set(tree.dst, lid, dst_terminal);
}

/// Walks the installed LFTs from a switch towards a LID, yielding the
/// directed ISL hops and returning the node the walk delivers to. Returns
/// `Err` on missing entries or loops.
pub(crate) fn walk_lft(
    topo: &Topology,
    routes: &Routes,
    from: SwitchId,
    lid: Lid,
    mut visit: impl FnMut(DirLink),
) -> Result<NodeId, RouteError> {
    let mut cur = from;
    for _ in 0..=topo.num_switches() {
        let out = routes
            .get(cur, lid)
            .ok_or(RouteError::NoRoute { switch: cur, lid })?;
        let dl = DirLink::leaving(topo, out, Endpoint::Switch(cur));
        match dl.head(topo) {
            Endpoint::Node(n) => return Ok(n),
            Endpoint::Switch(next) => {
                visit(dl);
                cur = next;
            }
        }
    }
    Err(RouteError::ForwardingLoop { lid, at: cur })
}

/// Weight-balanced minimal routing for every destination LID — the shared
/// core of [`Sssp`], [`Dfsssp`] and [`MinHop`].
///
/// After installing each destination tree, the weights of every directed
/// cable on every source-node-to-destination path grow by `update_per_path`
/// (0 disables balancing), which is how SSSP spreads consecutive destination
/// trees across the fabric.
pub(crate) fn fill_weighted_minimal(
    topo: &Topology,
    routes: &mut Routes,
    update_per_path: u64,
) -> Result<(), RouteError> {
    let mut weights = EdgeWeights::new(topo);
    let dests: Vec<(Lid, NodeId)> = routes.lid_map.lids().collect();
    for (lid, dst) in dests {
        let (dsw, dlink) = topo.node_switch(dst);
        let tree = crate::dijkstra::dijkstra_to_dest(topo, dsw, &weights, None);
        install_tree(routes, &tree, lid, dlink);
        if update_per_path > 0 {
            for src in topo.nodes() {
                if src == dst {
                    continue;
                }
                let (ssw, _) = topo.node_switch(src);
                tree.walk(topo, ssw, |dl| weights.add(dl, update_per_path));
            }
        }
    }
    Ok(())
}

/// Assigns every `(source switch, destination LID)` path to the lowest
/// virtual lane whose channel dependency graph stays acyclic — the
/// VL-based deadlock-avoidance of DFSSSP/PARX (paper Algorithm 1, final
/// loop). Returns the number of VLs used.
pub(crate) fn assign_vls(
    topo: &Topology,
    routes: &mut Routes,
    max_vls: u8,
) -> Result<u8, RouteError> {
    assert!(max_vls >= 1);
    let channels = topo.num_links() * 2;
    let mut cdgs: Vec<Cdg> = vec![Cdg::new(channels)];
    let mut used: u8 = 1;

    // Only switches that host nodes originate traffic.
    let src_switches: Vec<SwitchId> = topo
        .switches()
        .filter(|&s| topo.attached_nodes(s).next().is_some())
        .collect();
    let dests: Vec<(Lid, NodeId)> = routes.lid_map.lids().collect();

    let mut hops: Vec<DirLink> = Vec::with_capacity(8);
    for &(lid, dst) in &dests {
        let (dsw, _) = topo.node_switch(dst);
        for &ssw in &src_switches {
            if ssw == dsw {
                continue;
            }
            hops.clear();
            walk_lft(topo, routes, ssw, lid, |dl| hops.push(dl))?;
            let chain = chain_of(&hops);
            if chain.is_empty() {
                continue; // single-hop paths cannot deadlock
            }
            let mut placed = false;
            for vl in 0..used {
                if !cdgs[vl as usize].would_cycle(&chain) {
                    cdgs[vl as usize].add_chain(&chain);
                    *routes.sl_entry_mut(ssw, lid) = vl;
                    placed = true;
                    break;
                }
            }
            if !placed {
                if used >= max_vls {
                    return Err(RouteError::VlOverflow {
                        required: used + 1,
                        available: max_vls,
                    });
                }
                cdgs.push(Cdg::new(channels));
                cdgs[used as usize].add_chain(&chain);
                *routes.sl_entry_mut(ssw, lid) = used;
                used += 1;
            }
        }
    }
    routes.num_vls = used;
    Ok(used)
}
