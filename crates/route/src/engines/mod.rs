//! Routing engines producing InfiniBand-style forwarding state.
//!
//! | engine | paper role |
//! |---|---|
//! | [`Ftree`] | OpenSM `ftree` — the Fat-Tree baseline (combo 1) |
//! | [`Sssp`] | OpenSM SSSP (Hoefler'09) — faulty-Fat-Tree combo 2 |
//! | [`Dfsssp`] | deadlock-free SSSP (Domke'11) — HyperX combos 3 & 4 |
//! | [`Parx`] | the paper's contribution — HyperX combo 5 |
//! | [`UpDown`] | Up*/Down* — classic deadlock-free reference |
//! | [`MinHop`] | unbalanced hop-minimal baseline for ablations |
//! | [`Lash`] | LASH — cited deadlock-free alternative (unbalanced + VLs) |
//! | [`ParxNd`] | extension: PARX generalized to n-dimensional HyperX |

mod dfsssp;
mod ftree;
mod lash;
mod minhop;
mod parx;
mod parx_nd;
mod sssp;
mod updown;

pub use dfsssp::Dfsssp;
pub use ftree::Ftree;
pub use lash::Lash;
pub use minhop::MinHop;
pub use parx::Parx;
pub use parx_nd::{select_lid_nd, HalfRule, ParxNd};
pub use sssp::Sssp;
pub use updown::UpDown;

use crate::cdg::{chain_of, Cdg};
use crate::dijkstra::{DestTree, EdgeWeights};
use crate::lft::{DirLink, RouteError, Routes};
use crate::lid::Lid;
use hxtopo::{Endpoint, NodeId, SwitchId, Topology};

/// A static routing engine: consumes a topology, produces complete
/// forwarding state.
pub trait RoutingEngine {
    /// Engine name as it appears in reports (mirrors the paper's labels).
    fn name(&self) -> &'static str;

    /// Computes forwarding tables (and, for deadlock-free engines, the
    /// service-level table).
    fn route(&self, topo: &Topology) -> Result<Routes, RouteError>;
}

/// Installs one destination tree into the LFTs: every reachable switch
/// forwards `lid` along the tree; the destination switch forwards to the
/// terminal cable.
pub(crate) fn install_tree(
    routes: &mut Routes,
    tree: &DestTree,
    lid: Lid,
    dst_terminal: hxtopo::LinkId,
) {
    for (s, out) in tree.out.iter().enumerate() {
        if let Some(link) = out {
            routes.set(SwitchId::from_idx(s), lid, *link);
        }
    }
    routes.set(tree.dst, lid, dst_terminal);
}

/// Walks the installed LFTs from a switch towards a LID, yielding the
/// directed ISL hops and returning the node the walk delivers to. Returns
/// `Err` on missing entries or loops.
pub(crate) fn walk_lft(
    topo: &Topology,
    routes: &Routes,
    from: SwitchId,
    lid: Lid,
    mut visit: impl FnMut(DirLink),
) -> Result<NodeId, RouteError> {
    let mut cur = from;
    for _ in 0..=topo.num_switches() {
        let out = routes
            .get(cur, lid)
            .ok_or(RouteError::NoRoute { switch: cur, lid })?;
        let dl = DirLink::leaving(topo, out, Endpoint::Switch(cur));
        match dl.head(topo) {
            Endpoint::Node(n) => return Ok(n),
            Endpoint::Switch(next) => {
                visit(dl);
                cur = next;
            }
        }
    }
    Err(RouteError::ForwardingLoop { lid, at: cur })
}

/// Weight-balanced minimal routing for every destination LID — the shared
/// core of [`Sssp`], [`Dfsssp`] and [`MinHop`].
///
/// After installing each destination tree, the weights of every directed
/// cable on every source-node-to-destination path grow by `update_per_path`
/// (0 disables balancing), which is how SSSP spreads consecutive destination
/// trees across the fabric.
pub(crate) fn fill_weighted_minimal(
    topo: &Topology,
    routes: &mut Routes,
    update_per_path: u64,
) -> Result<(), RouteError> {
    let mut weights = EdgeWeights::new(topo);
    let dests: Vec<(Lid, NodeId)> = routes.lid_map.lids().collect();
    for (lid, dst) in dests {
        let (dsw, dlink) = topo.node_switch(dst);
        let tree = crate::dijkstra::dijkstra_to_dest(topo, dsw, &weights, None);
        install_tree(routes, &tree, lid, dlink);
        if update_per_path > 0 {
            for src in topo.nodes() {
                if src == dst {
                    continue;
                }
                let (ssw, _) = topo.node_switch(src);
                tree.walk(topo, ssw, |dl| weights.add(dl, update_per_path));
            }
        }
    }
    Ok(())
}

/// Assigns every `(source switch, destination LID)` path to the lowest
/// virtual lane whose channel dependency graph stays acyclic — the
/// VL-based deadlock-avoidance of DFSSSP/PARX (paper Algorithm 1, final
/// loop). Returns the number of VLs used.
pub(crate) fn assign_vls(
    topo: &Topology,
    routes: &mut Routes,
    max_vls: u8,
) -> Result<u8, RouteError> {
    assert!(max_vls >= 1);
    let channels = topo.num_links() * 2;
    let mut cdgs: Vec<Cdg> = vec![Cdg::new(channels)];
    let mut used: u8 = 1;

    // Only switches that host nodes originate traffic.
    let src_switches: Vec<SwitchId> = topo
        .switches()
        .filter(|&s| topo.attached_nodes(s).next().is_some())
        .collect();
    let dests: Vec<(Lid, NodeId)> = routes.lid_map.lids().collect();

    let mut hops: Vec<DirLink> = Vec::with_capacity(8);
    for &(lid, dst) in &dests {
        let (dsw, _) = topo.node_switch(dst);
        for &ssw in &src_switches {
            if ssw == dsw {
                continue;
            }
            hops.clear();
            walk_lft(topo, routes, ssw, lid, |dl| hops.push(dl))?;
            let chain = chain_of(&hops);
            if chain.is_empty() {
                continue; // single-hop paths cannot deadlock
            }
            let mut placed = false;
            for vl in 0..used {
                if !cdgs[vl as usize].would_cycle(&chain) {
                    cdgs[vl as usize].add_chain(&chain);
                    *routes.sl_entry_mut(ssw, lid) = vl;
                    placed = true;
                    break;
                }
            }
            if !placed {
                if used >= max_vls {
                    return Err(RouteError::VlOverflow {
                        required: used + 1,
                        available: max_vls,
                    });
                }
                cdgs.push(Cdg::new(channels));
                cdgs[used as usize].add_chain(&chain);
                *routes.sl_entry_mut(ssw, lid) = used;
                used += 1;
            }
        }
    }
    routes.num_vls = used;
    Ok(used)
}
