//! Unbalanced hop-minimal routing: like SSSP but without path counting.
//! All destination trees gravitate to the lowest-indexed cables, which is
//! the worst case for static minimal routing — kept as the ablation baseline
//! for DESIGN.md's "oblivious +1 vs demand +w" study.

use super::{fill_weighted_minimal, RoutingEngine};
use crate::lft::{RouteError, Routes};
use crate::lid::{LidMap, LidPolicy};
use hxtopo::Topology;

/// Min-hop routing configuration.
#[derive(Debug, Clone, Default)]
pub struct MinHop {
    /// LID mask control.
    pub lmc: u8,
}

impl RoutingEngine for MinHop {
    fn name(&self) -> &'static str {
        "minhop"
    }

    fn route(&self, topo: &Topology) -> Result<Routes, RouteError> {
        let lid_map = LidMap::new(topo, self.lmc, LidPolicy::Sequential);
        let mut routes = Routes::new(topo, lid_map, "minhop");
        fill_weighted_minimal(topo, &mut routes, 0)?;
        Ok(routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_paths;
    use hxtopo::hyperx::HyperXConfig;

    #[test]
    fn minhop_is_minimal() {
        let t = HyperXConfig::new(vec![4, 3], 2).build();
        let r = MinHop::default().route(&t).unwrap();
        let stats = verify_paths(&t, &r).unwrap();
        assert!(stats.max_isl_hops <= 2);
    }

    #[test]
    fn minhop_deterministic() {
        let t = HyperXConfig::new(vec![3, 3], 1).build();
        let a = MinHop::default().route(&t).unwrap();
        let b = MinHop::default().route(&t).unwrap();
        for src in t.nodes() {
            for (lid, _) in a.lid_map.lids() {
                assert_eq!(a.path(&t, src, lid).unwrap(), b.path(&t, src, lid).unwrap());
            }
        }
    }
}
