//! Up*/Down* routing (Autonet, Schroeder et al. '91): links are oriented
//! towards a root switch; legal paths climb zero or more "up" links, then
//! descend zero or more "down" links. Cyclic channel dependencies are
//! impossible, so one virtual lane suffices on any topology — the classic
//! deadlock-avoidance reference the paper cites alongside Nue.
//!
//! Because InfiniBand forwarding is destination-based and memoryless, the
//! implementation uses the consistent "descend as soon as a pure-down path
//! exists" rule: a switch with a finite down-only distance to the
//! destination always descends (every switch on a pure-down path also has
//! one), and all other switches climb towards the root, which always has a
//! pure-down path. Transitions are therefore only up->up, up->down and
//! down->down, keeping the channel dependency graph acyclic. Paths may be
//! non-minimal — the well-known cost of Up*/Down*.

use super::RoutingEngine;
use crate::lft::{RouteError, Routes};
use crate::lid::{LidMap, LidPolicy};
use hxtopo::props::bfs_dist;
use hxtopo::{LinkId, SwitchId, Topology};

/// Up*/Down* configuration.
#[derive(Debug, Clone, Default)]
pub struct UpDown {
    /// Root switch; defaults to the switch with the highest degree (ties to
    /// the lowest id), which approximates the usual "most central" pick.
    pub root: Option<SwitchId>,
}

impl UpDown {
    fn pick_root(&self, topo: &Topology) -> SwitchId {
        self.root.unwrap_or_else(|| {
            topo.switches()
                .max_by_key(|&s| {
                    (
                        topo.active_switch_neighbors(s).count(),
                        usize::MAX - s.idx(),
                    )
                })
                .expect("topology has no switches")
        })
    }
}

impl RoutingEngine for UpDown {
    fn name(&self) -> &'static str {
        "updown"
    }

    fn route(&self, topo: &Topology) -> Result<Routes, RouteError> {
        let root = self.pick_root(topo);
        let depth = bfs_dist(topo, root);
        let n = topo.num_switches();
        // Total order: closer to the root (then lower id) = "upper" end.
        // An s -> p move is "up" iff ord(p) < ord(s).
        let ord = |s: SwitchId| (depth[s.idx()], s.idx());

        let lid_map = LidMap::new(topo, 0, LidPolicy::Sequential);
        let mut routes = Routes::new(topo, lid_map, "updown");

        // Switches sorted by ord ascending (root-most first).
        let mut by_ord: Vec<SwitchId> = topo.switches().collect();
        by_ord.sort_by_key(|&s| ord(s));

        let dests: Vec<_> = routes.lid_map.lids().collect();
        let inf = u32::MAX;
        for (lid, dst) in dests {
            let (dsw, dlink) = topo.node_switch(dst);

            // dd[s]: shortest down-only distance s -> dsw (down moves go to
            // strictly higher ord). dd[s] depends on higher-ord neighbors,
            // so process ord-descending.
            let mut dd = vec![inf; n];
            dd[dsw.idx()] = 0;
            for &s in by_ord.iter().rev() {
                if s == dsw {
                    continue;
                }
                let mut best = inf;
                for (p, _) in topo.active_switch_neighbors(s) {
                    if ord(p) > ord(s) && dd[p.idx()] != inf {
                        best = best.min(dd[p.idx()].saturating_add(1));
                    }
                }
                dd[s.idx()] = best;
            }

            // h[s]: climb distance until a pure-down path is available.
            // h = dd where finite; otherwise 1 + min over up-neighbors.
            // Up moves decrease ord, so process ord-ascending.
            let mut h = dd.clone();
            for &s in &by_ord {
                if h[s.idx()] != inf {
                    continue;
                }
                let mut best = inf;
                for (p, _) in topo.active_switch_neighbors(s) {
                    if ord(p) < ord(s) && h[p.idx()] != inf {
                        best = best.min(h[p.idx()].saturating_add(1));
                    }
                }
                h[s.idx()] = best;
            }

            for s in topo.switches() {
                if s == dsw {
                    routes.set(s, lid, dlink);
                    continue;
                }
                let mut cands: Vec<LinkId> = Vec::new();
                if dd[s.idx()] != inf {
                    // Descend: every candidate also has a pure-down path.
                    for (p, link) in topo.active_switch_neighbors(s) {
                        if ord(p) > ord(s) && dd[p.idx()] != inf && dd[p.idx()] + 1 == dd[s.idx()] {
                            cands.push(link);
                        }
                    }
                } else if h[s.idx()] != inf {
                    // Climb towards a switch that can descend.
                    for (p, link) in topo.active_switch_neighbors(s) {
                        if ord(p) < ord(s) && h[p.idx()] != inf && h[p.idx()] + 1 == h[s.idx()] {
                            cands.push(link);
                        }
                    }
                }
                if !cands.is_empty() {
                    routes.set(s, lid, cands[lid as usize % cands.len()]);
                }
            }
        }
        Ok(routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_deadlock_free, verify_paths};
    use hxtopo::fattree::FatTreeConfig;
    use hxtopo::hyperx::HyperXConfig;

    #[test]
    fn updown_routes_hyperx_one_vl() {
        let t = HyperXConfig::new(vec![4, 4], 2).build();
        let r = UpDown::default().route(&t).unwrap();
        verify_paths(&t, &r).unwrap();
        let vls = verify_deadlock_free(&t, &r).unwrap();
        assert_eq!(vls, 1, "up*/down* must be deadlock-free with one VL");
    }

    #[test]
    fn updown_routes_fattree() {
        let t = FatTreeConfig::k_ary_n_tree(3, 3);
        let r = UpDown::default().route(&t).unwrap();
        let stats = verify_paths(&t, &r).unwrap();
        assert!(stats.max_isl_hops <= 6);
        verify_deadlock_free(&t, &r).unwrap();
    }

    #[test]
    fn updown_paths_may_exceed_minimal() {
        // The price of up*/down* on a direct network: some paths are longer
        // than the 2-hop HyperX minimum, but never unreasonable.
        let t = HyperXConfig::new(vec![4, 4], 1).build();
        let r = UpDown::default().route(&t).unwrap();
        let stats = verify_paths(&t, &r).unwrap();
        assert!(stats.max_isl_hops >= 2);
        assert!(stats.max_isl_hops <= 4, "{stats:?}");
    }

    #[test]
    fn updown_explicit_root() {
        let t = HyperXConfig::new(vec![3, 3], 1).build();
        let r = UpDown {
            root: Some(SwitchId(4)),
        }
        .route(&t)
        .unwrap();
        verify_paths(&t, &r).unwrap();
        verify_deadlock_free(&t, &r).unwrap();
    }

    #[test]
    fn updown_survives_faults() {
        use hxtopo::faults::FaultPlan;
        let mut t = HyperXConfig::t2_hyperx(70).build();
        FaultPlan::t2_hyperx().apply(&mut t);
        let r = UpDown::default().route(&t).unwrap();
        verify_paths(&t, &r).unwrap();
        verify_deadlock_free(&t, &r).unwrap();
    }

    #[test]
    fn updown_deterministic() {
        let t = HyperXConfig::new(vec![4, 3], 2).build();
        let a = UpDown::default().route(&t).unwrap();
        let b = UpDown::default().route(&t).unwrap();
        for src in t.nodes() {
            for (lid, _) in a.lid_map.lids() {
                assert_eq!(a.path(&t, src, lid).unwrap(), b.path(&t, src, lid).unwrap());
            }
        }
    }
}
