//! FT-HyperX — fault-tolerant HyperX routing after Camarero & Cano
//! (arXiv 2404.04315): minimal dimension-ordered paths on the healthy
//! lattice, locally re-selected non-minimal hops around faults, and —
//! the point of the exercise — link churn absorbed by recomputing only
//! the destination trees the dead cable carried, *never* a global
//! resweep.
//!
//! ## The routing rule
//!
//! For destination switch `d`, every switch `s` forwards along the
//! active neighbor edge `(s, w, link)` minimizing, lexicographically:
//!
//! 1. `dist(w, d)` must equal `dist(s, d) - 1` (BFS distance over the
//!    *faulted* lattice — strictly decreasing, hence loop-free);
//! 2. prefer *aligned* hops — `w` differs from `s` in exactly the
//!    dimension where `w` already matches `d`'s coordinate (the
//!    offset-eliminating minimal move of dimension-ordered HyperX
//!    routing); a non-aligned hop is the paper's local deroute, taken
//!    only when faults leave no aligned choice at this distance;
//! 3. lowest link id (deterministic tie-break, matching
//!    [`dijkstra_to_dest`](crate::dijkstra::dijkstra_to_dest)).
//!
//! The rule is *history-free*: each tree is a pure function of the
//! active lattice. That is what makes engine-owned repair exact — a
//! patched tree is bit-identical to what a from-scratch resweep would
//! compute, which `crates/route/tests/engines_repair.rs` pins over
//! random churn sequences.
//!
//! ## Incremental repair
//!
//! * [`IncrementalRepair::on_fail`]: a tree changes iff some switch's
//!   installed entry used the dead cable (removing a non-chosen
//!   candidate never moves the argmin, and distances are realized by
//!   installed paths, so they only change for trees that used it).
//!   Those trees are recomputed; everything else is untouched.
//! * [`IncrementalRepair::on_recover`]: restoring `(u, v)` changes a
//!   tree iff the endpoints' installed hop counts differ by ≥ 2 (a
//!   distance actually improves), an endpoint lost the destination
//!   entirely, or the restored edge beats an endpoint's current argmin
//!   at equal distance (alignment/link-id preference).

use super::{
    assign_vls, install_tree, walk_lft, IncrementalRepair, LftDelta, Multipath, RoutingEngine,
};
use crate::dijkstra::DestTree;
use crate::lft::{RouteError, Routes};
use crate::lid::{Lid, LidMap, LidPolicy};
use hxtopo::hyperx::HyperXShape;
use hxtopo::props::bfs_dist;
use hxtopo::{LinkId, NodeId, SwitchId, Topology};

/// Fault-tolerant HyperX routing (Camarero/Cano). LMC 0, sequential
/// LIDs; deadlock freedom via the DFSSSP-style lowest-acyclic-VL
/// assignment over the (possibly derouted) path set.
#[derive(Debug, Clone)]
pub struct FtHyperX {
    /// Virtual lanes available for deadlock-free layering.
    pub max_vls: u8,
}

impl Default for FtHyperX {
    fn default() -> FtHyperX {
        FtHyperX { max_vls: 8 }
    }
}

/// Hop preference at fixed distance: aligned (offset-eliminating) moves
/// before deroutes, then lowest link id.
type HopKey = (bool, u32);

impl FtHyperX {
    fn shape(topo: &Topology) -> Result<&HyperXShape, RouteError> {
        topo.meta.as_hyperx().ok_or(RouteError::UnsupportedTopology(
            "FT-HyperX routes HyperX lattices only",
        ))
    }

    /// Whether the neighbor hop `s -> w` eliminates a coordinate offset
    /// toward the destination at `cd` (a minimal dimension-ordered move).
    fn aligned(hx: &HyperXShape, s: SwitchId, w: SwitchId, cd: &[u32]) -> bool {
        let (cs, cw) = (hx.coord(s), hx.coord(w));
        cs.iter()
            .zip(&cw)
            .zip(cd)
            .all(|((&a, &b), &d)| a == b || b == d)
    }

    /// `false` = deroute: the key orders aligned hops first.
    fn hop_key(hx: &HyperXShape, s: SwitchId, w: SwitchId, cd: &[u32], link: LinkId) -> HopKey {
        (!Self::aligned(hx, s, w, cd), link.0)
    }

    /// The destination tree the rule induces on the current (faulted)
    /// lattice. `hops` carries the BFS distances (`u32::MAX` =
    /// unreachable).
    fn local_tree(hx: &HyperXShape, topo: &Topology, dsw: SwitchId) -> DestTree {
        let dist = bfs_dist(topo, dsw);
        let cd = hx.coord(dsw);
        let n = topo.num_switches();
        let mut out: Vec<Option<LinkId>> = vec![None; n];
        let mut hops = vec![u32::MAX; n];
        for s in topo.switches() {
            let ds = dist[s.idx()];
            if ds == usize::MAX {
                continue;
            }
            hops[s.idx()] = ds as u32;
            if s == dsw {
                continue;
            }
            let mut best: Option<(HopKey, LinkId)> = None;
            for (w, link) in topo.active_switch_neighbors(s) {
                if dist[w.idx()] == usize::MAX || dist[w.idx()] + 1 != ds {
                    continue;
                }
                let key = Self::hop_key(hx, s, w, &cd, link);
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, link));
                }
            }
            out[s.idx()] = best.map(|(_, l)| l);
        }
        DestTree {
            dst: dsw,
            hops,
            out,
        }
    }

    /// Recomputes one destination tree and appends the entry rewrites
    /// that differ from the installed state. Errs when a node-hosting
    /// switch lost the destination (unroutable — the manager rolls the
    /// event back). Returns whether anything changed.
    fn patch_tree(
        topo: &Topology,
        hx: &HyperXShape,
        routes: &Routes,
        lid: Lid,
        dst: NodeId,
        delta: &mut LftDelta,
    ) -> Result<bool, RouteError> {
        let (dsw, dlink) = topo.node_switch(dst);
        let tree = Self::local_tree(hx, topo, dsw);
        for s in topo.switches() {
            if !tree.reachable(s) && topo.attached_nodes(s).next().is_some() {
                return Err(RouteError::NoRoute { switch: s, lid });
            }
        }
        let before = delta.entries.len();
        for s in topo.switches() {
            // Mirror install_tree exactly: the destination switch
            // forwards to the terminal, everything else along the tree.
            let new = if s == dsw {
                Some(dlink)
            } else {
                tree.out[s.idx()]
            };
            if routes.get(s, lid) != new {
                delta.entries.push((s, lid, new));
            }
        }
        let changed = delta.entries.len() > before;
        if changed {
            delta.touched.push(lid);
        }
        Ok(changed)
    }

    /// Installed ISL hop count from `sw` toward `lid`, `None` when the
    /// walk dead-ends (the switch has no live route).
    fn walked_hops(topo: &Topology, routes: &Routes, sw: SwitchId, lid: Lid) -> Option<u32> {
        let mut h = 0u32;
        walk_lft(topo, routes, sw, lid, |_| h += 1).ok().map(|_| h)
    }

    /// Whether the restored edge `l` (endpoint `s`, peer `w` at walked
    /// hops `hw` vs `s`'s `hs`) beats `s`'s installed argmin choice.
    #[allow(clippy::too_many_arguments)]
    fn endpoint_improves(
        hx: &HyperXShape,
        topo: &Topology,
        routes: &Routes,
        lid: Lid,
        cd: &[u32],
        s: SwitchId,
        w: SwitchId,
        l: LinkId,
        hs: u32,
        hw: u32,
    ) -> bool {
        if hw + 1 != hs {
            return false; // not distance-decreasing through the new edge
        }
        let Some(cur) = routes.get(s, lid) else {
            return true;
        };
        let cur_peer = topo
            .link(cur)
            .a
            .switch()
            .filter(|&p| p != s)
            .or_else(|| topo.link(cur).b.switch().filter(|&p| p != s));
        let Some(cur_peer) = cur_peer else {
            return false; // s is the destination switch (terminal entry)
        };
        Self::hop_key(hx, s, w, cd, l) < Self::hop_key(hx, s, cur_peer, cd, cur)
    }
}

impl RoutingEngine for FtHyperX {
    fn name(&self) -> &'static str {
        "ft-hyperx"
    }

    fn route(&self, topo: &Topology) -> Result<Routes, RouteError> {
        let hx = Self::shape(topo)?;
        let lid_map = LidMap::new(topo, 0, LidPolicy::Sequential);
        let mut routes = Routes::new(topo, lid_map, "ft-hyperx");
        let dests: Vec<(Lid, NodeId)> = routes.lid_map.lids().collect();
        for (lid, dst) in dests {
            let (dsw, dlink) = topo.node_switch(dst);
            let tree = Self::local_tree(hx, topo, dsw);
            install_tree(&mut routes, &tree, lid, dlink);
        }
        assign_vls(topo, &mut routes, self.max_vls)?;
        Ok(routes)
    }

    fn incremental(&self) -> Option<&dyn IncrementalRepair> {
        Some(self)
    }

    fn multipath(&self) -> Option<&dyn Multipath> {
        None
    }
}

impl IncrementalRepair for FtHyperX {
    fn on_fail(&self, topo: &Topology, routes: &Routes, l: LinkId) -> Result<LftDelta, RouteError> {
        let hx = Self::shape(topo)?;
        let mut delta = LftDelta::default();
        let dests: Vec<(Lid, NodeId)> = routes.lid_map.lids().collect();
        for (lid, dst) in dests {
            // History-free rule: a tree changes iff an installed entry
            // used the dead cable (see module docs for the argument).
            let uses = topo.switches().any(|s| routes.get(s, lid) == Some(l));
            if !uses {
                continue;
            }
            Self::patch_tree(topo, hx, routes, lid, dst, &mut delta)?;
        }
        Ok(delta)
    }

    fn on_recover(
        &self,
        topo: &Topology,
        routes: &Routes,
        l: LinkId,
    ) -> Result<LftDelta, RouteError> {
        let hx = Self::shape(topo)?;
        let link = topo.link(l);
        let (Some(u), Some(v)) = (link.a.switch(), link.b.switch()) else {
            return Err(RouteError::UnsupportedTopology(
                "terminal recovery is a membership change",
            ));
        };
        let mut delta = LftDelta::default();
        let dests: Vec<(Lid, NodeId)> = routes.lid_map.lids().collect();
        for (lid, dst) in dests {
            let cd = hx.coord(topo.node_switch(dst).0);
            let touched = match (
                Self::walked_hops(topo, routes, u, lid),
                Self::walked_hops(topo, routes, v, lid),
            ) {
                (Some(hu), Some(hv)) if hu.abs_diff(hv) < 2 => {
                    // No distance changed anywhere; only the endpoints'
                    // argmin can move (the edge is a new candidate there).
                    Self::endpoint_improves(hx, topo, routes, lid, &cd, u, v, l, hu, hv)
                        || Self::endpoint_improves(hx, topo, routes, lid, &cd, v, u, l, hv, hu)
                }
                // A distance improves through the edge, or an endpoint
                // had no live route at all: recompute the tree.
                _ => true,
            };
            if touched {
                Self::patch_tree(topo, hx, routes, lid, dst, &mut delta)?;
            }
        }
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathdb::PathDb;
    use crate::verify::{verify_deadlock_free, verify_paths};
    use hxtopo::hyperx::HyperXConfig;
    use hxtopo::LinkClass;

    fn hx44() -> Topology {
        HyperXConfig::new(vec![4, 4], 2).build()
    }

    #[test]
    fn routes_minimally_on_healthy_lattice() {
        let t = hx44();
        let r = FtHyperX::default().route(&t).unwrap();
        let stats = verify_paths(&t, &r).unwrap();
        assert_eq!(stats.pairs, 32 * 31);
        // HyperX diameter 2: no healthy path exceeds 2 ISL hops.
        assert!(
            stats.hist.iter().skip(3).all(|&n| n == 0),
            "hist {:?}",
            stats.hist
        );
        verify_deadlock_free(&t, &r).unwrap();
    }

    #[test]
    fn rejects_non_hyperx() {
        let t = hxtopo::fattree::FatTreeConfig::tsubame2(28);
        assert!(matches!(
            FtHyperX::default().route(&t),
            Err(RouteError::UnsupportedTopology(_))
        ));
    }

    #[test]
    fn fault_forces_deroute_but_stays_connected() {
        let mut t = HyperXConfig::new(vec![4], 2).build();
        // Kill one ring... 1-D 4-switch HyperX is a clique on 4 switches;
        // kill a direct cable and the pair must deroute to 2 hops.
        let victim = t
            .links()
            .find(|(_, l)| l.class != LinkClass::Terminal)
            .unwrap()
            .0;
        t.deactivate(victim);
        let r = FtHyperX::default().route(&t).unwrap();
        let stats = verify_paths(&t, &r).unwrap();
        assert_eq!(stats.pairs, 8 * 7);
        assert!(stats.hist.len() >= 3, "no deroute took 2 ISL hops");
    }

    #[test]
    fn on_fail_patch_is_bit_identical_to_resweep() {
        let engine = FtHyperX::default();
        let mut t = hx44();
        let r = engine.route(&t).unwrap();
        let victim = t
            .links()
            .find(|(_, l)| l.class != LinkClass::Terminal)
            .unwrap()
            .0;
        t.deactivate(victim);
        let delta = engine.on_fail(&t, &r, victim).unwrap();
        assert!(!delta.touched.is_empty(), "victim carried no tree?");
        let mut patched = r.clone();
        delta.apply(&mut patched);
        let fresh = engine.route(&t).unwrap();
        assert!(patched.lft_eq(&fresh));
        // And only a strict subset of trees was recomputed.
        assert!(delta.touched.len() < r.lid_map.lids().count());
        PathDb::build(&t, &patched, 1, 1).unwrap();
    }

    #[test]
    fn on_recover_patch_is_bit_identical_to_resweep() {
        let engine = FtHyperX::default();
        let mut t = hx44();
        let victim = t
            .links()
            .find(|(_, l)| l.class != LinkClass::Terminal)
            .unwrap()
            .0;
        t.deactivate(victim);
        let faulted = engine.route(&t).unwrap();
        t.activate(victim);
        let delta = engine.on_recover(&t, &faulted, victim).unwrap();
        let mut patched = faulted.clone();
        delta.apply(&mut patched);
        let fresh = engine.route(&t).unwrap();
        assert!(patched.lft_eq(&fresh));
    }
}
