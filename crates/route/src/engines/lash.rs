//! LASH — LAyered SHortest-path routing (Skeie, Lysne, Theiss, IPDPS'02),
//! one of the deadlock-free, topology-agnostic alternatives the paper
//! cites next to DFSSSP and Nue (Section 6).
//!
//! LASH computes plain (unbalanced) shortest paths and partitions the
//! source-destination pairs into virtual layers whose channel dependency
//! graphs stay acyclic — structurally DFSSSP without the path balancing,
//! which makes it the cleanest reference point for the "does balancing
//! matter?" ablation.

use super::{assign_vls, fill_weighted_minimal, RoutingEngine};
use crate::lft::{RouteError, Routes};
use crate::lid::{LidMap, LidPolicy};
use hxtopo::Topology;

/// LASH configuration.
#[derive(Debug, Clone)]
pub struct Lash {
    /// Hardware virtual-lane limit.
    pub max_vls: u8,
}

impl Default for Lash {
    fn default() -> Self {
        Lash { max_vls: 8 }
    }
}

impl RoutingEngine for Lash {
    fn name(&self) -> &'static str {
        "lash"
    }

    fn route(&self, topo: &Topology) -> Result<Routes, RouteError> {
        let lid_map = LidMap::new(topo, 0, LidPolicy::Sequential);
        let mut routes = Routes::new(topo, lid_map, "lash");
        fill_weighted_minimal(topo, &mut routes, 0)?;
        assign_vls(topo, &mut routes, self.max_vls)?;
        Ok(routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_deadlock_free, verify_paths};
    use hxtopo::hyperx::HyperXConfig;

    #[test]
    fn lash_is_deadlock_free_on_hyperx() {
        let t = HyperXConfig::new(vec![4, 4], 2).build();
        let r = Lash::default().route(&t).unwrap();
        let stats = verify_paths(&t, &r).unwrap();
        assert!(stats.max_isl_hops <= 2);
        let vls = verify_deadlock_free(&t, &r).unwrap();
        assert!(vls <= 8);
    }

    #[test]
    fn lash_matches_minhop_paths() {
        use super::super::MinHop;
        let t = HyperXConfig::new(vec![4, 3], 2).build();
        let lash = Lash::default().route(&t).unwrap();
        let minhop = MinHop::default().route(&t).unwrap();
        for src in t.nodes() {
            for (lid, dst) in lash.lid_map.lids() {
                if dst == src {
                    continue;
                }
                assert_eq!(
                    lash.path(&t, src, lid).unwrap().hops,
                    minhop.path(&t, src, lid).unwrap().hops
                );
            }
        }
    }

    #[test]
    fn lash_survives_faults() {
        use hxtopo::faults::FaultPlan;
        let mut t = HyperXConfig::t2_hyperx(70).build();
        FaultPlan::t2_hyperx().apply(&mut t);
        let r = Lash::default().route(&t).unwrap();
        verify_paths(&t, &r).unwrap();
        verify_deadlock_free(&t, &r).unwrap();
    }
}
