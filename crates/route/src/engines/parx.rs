//! PARX — Pattern-Aware Routing for 2-D HyperX topologies (the paper's
//! Algorithm 1 and central contribution).
//!
//! PARX exploits InfiniBand's LMC multi-LID feature: each HCA port receives
//! four virtual destination LIDs (LMC = 2). When the routing engine computes
//! paths towards LID index `x`, it *temporarily removes* the links inside
//! one half of the HyperX (rules R1–R4 of Section 3.2.1):
//!
//! * LID0 — remove all links within the left half,
//! * LID1 — right half, LID2 — top half, LID3 — bottom half.
//!
//! Depending on the destination's quadrant, some of its LIDs therefore get
//! minimal paths and others forced detours (Figure 3), and the modified bfo
//! PML chooses among them by message size via Table 1.
//!
//! Path calculation is DFSSSP's modified Dijkstra; the edge-weight updates
//! are demand-driven: for destinations listed in the ingested communication
//! profile, each source's weight contribution is its normalized demand
//! `w in 1..=255` rather than the oblivious `+1`, separating high-traffic
//! paths as much as possible (Section 3.2.3). Deadlock freedom comes from
//! the same VL layering as DFSSSP; the paper measured 5–8 VLs for its runs.

use super::{assign_vls, install_tree, walk_lft, RoutingEngine};
use crate::demand::Demand;
use crate::dijkstra::{dijkstra_to_dest, EdgeWeights};
use crate::lft::{RouteError, Routes};
use crate::lid::{LidMap, LidPolicy};
use crate::table1::{rule_for_lid, RemovedHalf};
use hxtopo::{NodeId, Topology};

/// PARX configuration.
#[derive(Debug, Clone, Default)]
pub struct Parx {
    /// Ingested communication profile (node-level, see [`Demand`]); `None`
    /// degrades PARX to oblivious `+1` balancing for all destinations.
    pub demand: Option<Demand>,
    /// Hardware virtual-lane limit; 0 means the QDR default of 8.
    pub max_vls: u8,
}

impl Parx {
    /// PARX with a communication profile.
    pub fn with_demand(demand: Demand) -> Parx {
        Parx {
            demand: Some(demand),
            max_vls: 8,
        }
    }

    /// Builds the four link masks implementing rules R1–R4: `masks[x][link]`
    /// is false when routing towards LID index `x` must ignore the cable.
    fn build_masks(topo: &Topology) -> Result<[Vec<bool>; 4], RouteError> {
        let hx = topo
            .meta
            .as_hyperx()
            .ok_or(RouteError::UnsupportedTopology(
                "PARX requires a HyperX topology",
            ))?;
        if hx.dims() != 2 || hx.shape.iter().any(|&s| s % 2 != 0) {
            return Err(RouteError::UnsupportedTopology(
                "PARX prototype supports 2-D HyperX with even dimensions",
            ));
        }
        let (sx, sy) = (hx.shape[0], hx.shape[1]);
        let mut masks = [(); 4].map(|_| vec![true; topo.num_links()]);
        for (id, link) in topo.links() {
            let (Some(a), Some(b)) = (link.a.switch(), link.b.switch()) else {
                continue; // terminal cables are never removed
            };
            let (ca, cb) = (hx.coord(a), hx.coord(b));
            for x in 0u8..4 {
                // Indices without a rule (non-LMC-2 spaces) remove nothing:
                // their LIDs simply route minimally.
                let Some(half) = rule_for_lid(x) else {
                    continue;
                };
                let inside = |c: &[u32]| match half {
                    RemovedHalf::Left => c[0] < sx / 2,
                    RemovedHalf::Right => c[0] >= sx / 2,
                    RemovedHalf::Top => c[1] < sy / 2,
                    RemovedHalf::Bottom => c[1] >= sy / 2,
                };
                if inside(&ca) && inside(&cb) {
                    masks[x as usize][id.idx()] = false;
                }
            }
        }
        Ok(masks)
    }
}

impl RoutingEngine for Parx {
    fn name(&self) -> &'static str {
        "parx"
    }

    fn with_demand(&self, demand: Demand) -> Option<Box<dyn RoutingEngine>> {
        Some(Box::new(Parx::with_demand(demand)))
    }

    fn route(&self, topo: &Topology) -> Result<Routes, RouteError> {
        let masks = Self::build_masks(topo)?;
        let lid_map = LidMap::new(topo, 2, LidPolicy::QuadrantBlocks);
        let mut routes = Routes::new(topo, lid_map, "parx");
        let mut weights = EdgeWeights::new(topo);

        let norm = self.demand.as_ref().map(|d| d.normalized());

        // Destination order: demand-listed nodes first (profile order), then
        // every other node — Algorithm 1's two outer loops.
        let listed: Vec<NodeId> = self
            .demand
            .as_ref()
            .map(|d| d.listed_destinations())
            .unwrap_or_default();
        let mut is_listed = vec![false; topo.num_nodes()];
        for &n in &listed {
            is_listed[n.idx()] = true;
        }
        let rest: Vec<NodeId> = topo.nodes().filter(|n| !is_listed[n.idx()]).collect();

        for (phase_listed, dests) in [(true, &listed), (false, &rest)] {
            for &nd in dests {
                let (dsw, dlink) = topo.node_switch(nd);
                for x in 0u32..4 {
                    let lid = routes.lid_map.lid(nd, x);
                    // Temporary graph I* with rule-R(x) links removed.
                    let tree = dijkstra_to_dest(topo, dsw, &weights, Some(&masks[x as usize]));
                    install_tree(&mut routes, &tree, lid, dlink);

                    // Fault tolerance (paper footnote 7): switches isolated
                    // by the removal fall back to the unrestricted graph.
                    if tree
                        .out
                        .iter()
                        .enumerate()
                        .any(|(s, o)| o.is_none() && s != dsw.idx())
                    {
                        let full = dijkstra_to_dest(topo, dsw, &weights, None);
                        for s in topo.switches() {
                            if s != dsw && !tree.reachable(s) {
                                if let Some(link) = full.out[s.idx()] {
                                    routes.set(s, lid, link);
                                }
                            }
                        }
                    }

                    // Edge-weight update before the next round.
                    if phase_listed {
                        let norm = norm.as_ref().expect("listed phase implies demand");
                        for (nx, w) in norm.senders_to(nd) {
                            if nx == nd {
                                continue;
                            }
                            let (ssw, _) = topo.node_switch(nx);
                            if ssw == dsw {
                                continue;
                            }
                            walk_lft(topo, &routes, ssw, lid, |dl| weights.add(dl, w as u64))?;
                        }
                    } else {
                        for nx in topo.nodes() {
                            if nx == nd {
                                continue;
                            }
                            let (ssw, _) = topo.node_switch(nx);
                            if ssw == dsw {
                                continue;
                            }
                            walk_lft(topo, &routes, ssw, lid, |dl| weights.add(dl, 1))?;
                        }
                    }
                }
            }
        }

        // Deadlock-free VL layering over all paths, including virtual LIDs.
        let max_vls = if self.max_vls == 0 { 8 } else { self.max_vls };
        assign_vls(topo, &mut routes, max_vls)?;
        Ok(routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::{lid_choices, SizeClass};
    use crate::verify::{verify_deadlock_free, verify_paths};
    use hxtopo::hyperx::{HyperXConfig, Quadrant};
    use hxtopo::props::bfs_dist;
    use hxtopo::SwitchId;

    fn small_hx() -> Topology {
        HyperXConfig::new(vec![4, 4], 2).build()
    }

    #[test]
    fn parx_rejects_non_hyperx() {
        let t = hxtopo::fattree::FatTreeConfig::k_ary_n_tree(4, 2);
        assert!(matches!(
            Parx::default().route(&t),
            Err(RouteError::UnsupportedTopology(_))
        ));
    }

    #[test]
    fn parx_rejects_odd_dimensions() {
        let t = HyperXConfig::new(vec![3, 4], 1).build();
        assert!(matches!(
            Parx::default().route(&t),
            Err(RouteError::UnsupportedTopology(_))
        ));
    }

    #[test]
    fn parx_all_lids_reachable_and_deadlock_free() {
        let t = small_hx();
        let r = Parx::default().route(&t).unwrap();
        let stats = verify_paths(&t, &r).unwrap();
        // 32 nodes x 31 peers x 4 LIDs each.
        assert_eq!(stats.pairs, 32 * 31 * 4);
        let vls = verify_deadlock_free(&t, &r).unwrap();
        assert!(vls <= 8, "paper: PARX needs 5-8 VLs, got {vls}");
    }

    #[test]
    fn small_lids_give_minimal_paths_large_forced_detours() {
        // The structural heart of PARX (Figure 3 / Table 1): for every node
        // pair, the Table-1a LID yields a hop-minimal route, and for
        // same-quadrant remote pairs the Table-1b LID is strictly longer.
        let t = small_hx();
        let hx = t.meta.as_hyperx().unwrap().clone();
        let r = Parx::default().route(&t).unwrap();
        let mut detours = 0usize;
        for src in t.nodes() {
            let (ssw, _) = t.node_switch(src);
            let min_dist = bfs_dist(&t, ssw);
            for dst in t.nodes() {
                if src == dst {
                    continue;
                }
                let (dsw, _) = t.node_switch(dst);
                if ssw == dsw {
                    continue;
                }
                let (sq, dq) = (hx.quadrant(ssw).unwrap(), hx.quadrant(dsw).unwrap());
                let minimal = min_dist[dsw.idx()];
                for &x in lid_choices(sq, dq, SizeClass::Small) {
                    let p = r.path_to(&t, src, dst, x as u32).unwrap();
                    assert_eq!(
                        p.isl_hops(),
                        minimal,
                        "small {src}->{dst} via LID{x}: {sq:?}->{dq:?}"
                    );
                }
                if sq == dq {
                    for &x in lid_choices(sq, dq, SizeClass::Large) {
                        let p = r.path_to(&t, src, dst, x as u32).unwrap();
                        assert!(p.isl_hops() >= minimal, "large path shorter than minimal?");
                        if p.isl_hops() > minimal {
                            detours += 1;
                        }
                    }
                }
            }
        }
        assert!(detours > 0, "large same-quadrant traffic must detour");
    }

    #[test]
    fn parx_increases_path_diversity_between_adjacent_switches() {
        // Paper Section 3.2.1: between two switches in one half, the four
        // LIDs' paths use more distinct first cables than the single
        // minimal route.
        let t = HyperXConfig::new(vec![8, 4], 2).build();
        let hx = t.meta.as_hyperx().unwrap().clone();
        let r = Parx::default().route(&t).unwrap();
        // Nodes on switches (0,0) and (1,0): same row, both left-top (Q0).
        let s0 = hx.switch_at(&[0, 0]);
        let s1 = hx.switch_at(&[1, 0]);
        let n0 = t.attached_nodes(s0).next().unwrap().0;
        let n1 = t.attached_nodes(s1).next().unwrap().0;
        let mut first_isl = std::collections::HashSet::new();
        for x in 0..4 {
            let p = r.path_to(&t, n0, n1, x).unwrap();
            if p.isl_hops() > 0 {
                first_isl.insert(p.hops[1]);
            }
        }
        assert!(
            first_isl.len() >= 2,
            "PARX should provide disjoint alternatives, got {first_isl:?}"
        );
        let _ = Quadrant::Q0;
    }

    #[test]
    fn parx_with_demand_shifts_weights() {
        // A demand profile concentrates weight, so the resulting tables must
        // differ from the oblivious run somewhere.
        let t = small_hx();
        let oblivious = Parx::default().route(&t).unwrap();
        let mut d = Demand::new(t.num_nodes());
        // Heavy all-to-all among the first 8 nodes.
        for i in 0..8u32 {
            for j in 0..8u32 {
                if i != j {
                    d.add(hxtopo::NodeId(i), hxtopo::NodeId(j), 1 << 20);
                }
            }
        }
        let aware = Parx::with_demand(d).route(&t).unwrap();
        verify_paths(&t, &aware).unwrap();
        verify_deadlock_free(&t, &aware).unwrap();
        let mut differs = false;
        'outer: for src in t.nodes() {
            for (lid, dst) in oblivious.lid_map.lids() {
                if dst == src {
                    continue;
                }
                // Note: LID layouts coincide (same policy), so compare paths.
                if oblivious.path(&t, src, lid).unwrap().hops
                    != aware.path(&t, src, lid).unwrap().hops
                {
                    differs = true;
                    break 'outer;
                }
            }
        }
        assert!(differs, "demand must influence routing");
    }

    #[test]
    fn parx_fault_tolerant_fallback() {
        use hxtopo::faults::{FaultCount, FaultPlan};
        let mut t = HyperXConfig::t2_hyperx(56).build();
        // Aggressive but survivable damage.
        FaultPlan {
            count: FaultCount::Absolute(40),
            class: None,
            seed: 7,
        }
        .apply(&mut t);
        let r = Parx::default().route(&t).unwrap();
        verify_paths(&t, &r).unwrap();
        verify_deadlock_free(&t, &r).unwrap();
    }

    #[test]
    fn parx_uses_quadrant_lid_blocks() {
        let t = small_hx();
        let r = Parx::default().route(&t).unwrap();
        let hx = t.meta.as_hyperx().unwrap().clone();
        for n in t.nodes() {
            let q = hx.quadrant(t.node_switch(n).0).unwrap();
            assert_eq!(r.lid_map.quadrant_of_lid(r.lid_map.base(n)), Some(q));
        }
        let _ = SwitchId(0);
    }
}
