//! OpenSM-style `ftree` routing for Fat-Trees: deterministic shortest paths
//! with D-mod-K spreading — the output port among equal-distance candidates
//! is selected by the destination LID, which spreads consecutive
//! destinations over the uplinks (Zahavi's D-Mod-K scheme).
//!
//! This is the paper's Fat-Tree baseline (combo 1). On a healthy folded
//! Clos all shortest paths are up*/down*, hence deadlock-free with one VL.

use super::RoutingEngine;
use crate::lft::{RouteError, Routes};
use crate::lid::{LidMap, LidPolicy};
use hxtopo::props::bfs_dist;
use hxtopo::{LinkId, Topology};

/// ftree configuration (no knobs; LMC 0 as deployed in the paper).
#[derive(Debug, Clone, Default)]
pub struct Ftree;

impl RoutingEngine for Ftree {
    fn name(&self) -> &'static str {
        "ftree"
    }

    fn route(&self, topo: &Topology) -> Result<Routes, RouteError> {
        // ftree requires a tree topology.
        if topo.meta.as_tree().is_none() {
            return Err(RouteError::UnsupportedTopology(
                "ftree requires a Fat-Tree topology",
            ));
        }
        let lid_map = LidMap::new(topo, 0, LidPolicy::Sequential);
        let mut routes = Routes::new(topo, lid_map, "ftree");

        let dests: Vec<_> = routes.lid_map.lids().collect();
        let mut candidates: Vec<LinkId> = Vec::new();
        for (lid, dst) in dests {
            let (dsw, dlink) = topo.node_switch(dst);
            let dist = bfs_dist(topo, dsw);
            for s in topo.switches() {
                if s == dsw {
                    routes.set(s, lid, dlink);
                    continue;
                }
                let d = dist[s.idx()];
                if d == usize::MAX {
                    continue;
                }
                candidates.clear();
                for (p, link) in topo.active_switch_neighbors(s) {
                    if dist[p.idx()] + 1 == d {
                        candidates.push(link);
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                // D-mod-K: spread destinations over the equal candidates.
                let pick = candidates[lid as usize % candidates.len()];
                routes.set(s, lid, pick);
            }
        }
        Ok(routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_deadlock_free, verify_paths};
    use hxtopo::fattree::FatTreeConfig;
    use hxtopo::hyperx::HyperXConfig;
    use hxtopo::NodeId;

    #[test]
    fn ftree_rejects_hyperx() {
        let t = HyperXConfig::new(vec![3, 3], 1).build();
        assert!(matches!(
            Ftree.route(&t),
            Err(RouteError::UnsupportedTopology(_))
        ));
    }

    #[test]
    fn ftree_routes_4ary_2tree() {
        let t = FatTreeConfig::k_ary_n_tree(4, 2);
        let r = Ftree.route(&t).unwrap();
        let stats = verify_paths(&t, &r).unwrap();
        assert!(stats.max_isl_hops <= 2);
        assert_eq!(stats.pairs, 16 * 15);
    }

    #[test]
    fn ftree_is_deadlock_free_on_healthy_tree() {
        let t = FatTreeConfig::k_ary_n_tree(3, 3);
        let r = Ftree.route(&t).unwrap();
        verify_deadlock_free(&t, &r).unwrap();
    }

    #[test]
    fn ftree_spreads_uplinks_by_destination() {
        // Two destinations on another leaf must not always share the same
        // first uplink.
        let t = FatTreeConfig::k_ary_n_tree(4, 2);
        let r = Ftree.route(&t).unwrap();
        let src = NodeId(0);
        let (ssw, _) = t.node_switch(src);
        let mut first_links = std::collections::HashSet::new();
        // Destinations on other leaves.
        for dst in t.nodes().skip(4) {
            let p = r.path(&t, src, r.lid_map.base(dst)).unwrap();
            if p.isl_hops() > 0 {
                first_links.insert(p.hops[1]);
            }
        }
        let _ = ssw;
        assert!(
            first_links.len() > 1,
            "D-mod-K should use multiple uplinks, got {first_links:?}"
        );
    }

    #[test]
    fn ftree_tsubame2_full() {
        let t = FatTreeConfig::tsubame2(672);
        let r = Ftree.route(&t).unwrap();
        // Spot-check a sample of pairs rather than all 672*671.
        for src in [0u32, 100, 333, 671] {
            for dst in [1u32, 55, 400, 670] {
                if src == dst {
                    continue;
                }
                let p = r
                    .path(&t, NodeId(src), r.lid_map.base(NodeId(dst)))
                    .unwrap();
                assert!(p.isl_hops() <= 4, "{src}->{dst}: {} ISLs", p.isl_hops());
            }
        }
    }

    #[test]
    fn ftree_survives_faults() {
        use hxtopo::faults::FaultPlan;
        let mut t = FatTreeConfig::tsubame2(672);
        FaultPlan::t2_fattree().apply(&mut t);
        let r = Ftree.route(&t).unwrap();
        for src in [0u32, 250, 500] {
            for dst in [10u32, 300, 660] {
                r.path(&t, NodeId(src), r.lid_map.base(NodeId(dst)))
                    .unwrap();
            }
        }
    }
}
