//! PARX-nD — the paper's Section 3.2.1 notes that the quadrant approach
//! "is generalizable to higher dimensions"; this extension implements it
//! for any even-extent L-dimensional HyperX.
//!
//! Each dimension contributes two link-removal rules — drop all links whose
//! endpoints both lie in the lower (or upper) half along that dimension —
//! giving `2L` virtual destination LIDs per node (LMC = ceil(log2(2L))).
//! For `L = 2` the rules and LID indices coincide exactly with the paper's
//! R1–R4 (LID0 = left/lower-x, LID1 = right, LID2 = top/lower-y,
//! LID3 = bottom), and the generalized selection rule reproduces Table 1:
//!
//! * **small** messages may use any LID whose rule does not confine both
//!   endpoints (a minimal path survives: cross the rule's dimension first,
//!   then stay outside the removed half),
//! * **large** messages prefer LIDs whose removed half contains *both*
//!   endpoints, forcing the Figure-3b detour; when source and destination
//!   sit in opposite halves of every dimension no such rule exists and the
//!   selection degrades to a minimal LID — exactly like the off-diagonal
//!   minimal entries of Table 1b.

use super::{assign_vls, install_tree, walk_lft, RoutingEngine};
use crate::demand::Demand;
use crate::dijkstra::{dijkstra_to_dest, EdgeWeights};
use crate::lft::{RouteError, Routes};
use crate::lid::{LidMap, LidPolicy};
use crate::table1::SizeClass;
use hxtopo::{NodeId, Topology};

/// A half-removal rule: drop links internal to one half of one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HalfRule {
    /// Dimension index.
    pub dim: usize,
    /// `false` = lower half (`coord < extent/2`), `true` = upper half.
    pub upper: bool,
}

impl HalfRule {
    /// Rule encoded by LID index `x` (`x = 2*dim + upper`).
    pub fn of_lid(x: u8) -> HalfRule {
        HalfRule {
            dim: (x / 2) as usize,
            upper: x % 2 == 1,
        }
    }

    /// LID index of this rule.
    pub fn lid(&self) -> u8 {
        (self.dim * 2) as u8 + u8::from(self.upper)
    }

    /// Whether a coordinate lies inside the removed half.
    pub fn contains(&self, coord: &[u32], shape: &[u32]) -> bool {
        let half = shape[self.dim] / 2;
        if self.upper {
            coord[self.dim] >= half
        } else {
            coord[self.dim] < half
        }
    }
}

/// Valid LID indices for a source/destination coordinate pair and size
/// class on an L-dimensional even HyperX (generalized Table 1).
pub fn lid_choices_nd(shape: &[u32], src: &[u32], dst: &[u32], size: SizeClass) -> Vec<u8> {
    let rules = 2 * shape.len() as u8;
    let minimal: Vec<u8> = (0..rules)
        .filter(|&x| {
            let r = HalfRule::of_lid(x);
            !(r.contains(src, shape) && r.contains(dst, shape))
        })
        .collect();
    match size {
        SizeClass::Small => minimal,
        SizeClass::Large => {
            let detours: Vec<u8> = (0..rules)
                .filter(|&x| {
                    let r = HalfRule::of_lid(x);
                    r.contains(src, shape) && r.contains(dst, shape)
                })
                .collect();
            if detours.is_empty() {
                minimal
            } else {
                detours
            }
        }
    }
}

/// Deterministically selects one LID for a message (generalized
/// [`crate::table1::select_lid`]).
pub fn select_lid_nd(
    shape: &[u32],
    src: &[u32],
    dst: &[u32],
    size: SizeClass,
    discriminator: u64,
) -> u8 {
    let c = lid_choices_nd(shape, src, dst, size);
    c[(discriminator % c.len() as u64) as usize]
}

/// The generalized engine.
#[derive(Debug, Clone, Default)]
pub struct ParxNd {
    /// Optional communication profile (as in [`super::Parx`]).
    pub demand: Option<Demand>,
    /// Hardware VL limit; 0 = 8.
    pub max_vls: u8,
}

impl ParxNd {
    fn build_masks(topo: &Topology) -> Result<Vec<Vec<bool>>, RouteError> {
        let hx = topo
            .meta
            .as_hyperx()
            .ok_or(RouteError::UnsupportedTopology(
                "PARX-nD requires a HyperX topology",
            ))?;
        if hx.shape.iter().any(|&s| s % 2 != 0) {
            return Err(RouteError::UnsupportedTopology(
                "PARX-nD requires even extents in every dimension",
            ));
        }
        let rules = 2 * hx.dims();
        let mut masks = vec![vec![true; topo.num_links()]; rules];
        for (id, link) in topo.links() {
            let (Some(a), Some(b)) = (link.a.switch(), link.b.switch()) else {
                continue;
            };
            let (ca, cb) = (hx.coord(a), hx.coord(b));
            for x in 0..rules as u8 {
                let r = HalfRule::of_lid(x);
                if r.contains(&ca, &hx.shape) && r.contains(&cb, &hx.shape) {
                    masks[x as usize][id.idx()] = false;
                }
            }
        }
        Ok(masks)
    }
}

impl RoutingEngine for ParxNd {
    fn name(&self) -> &'static str {
        "parx-nd"
    }

    fn with_demand(&self, demand: Demand) -> Option<Box<dyn RoutingEngine>> {
        Some(Box::new(ParxNd {
            demand: Some(demand),
            ..self.clone()
        }))
    }

    fn route(&self, topo: &Topology) -> Result<Routes, RouteError> {
        let masks = Self::build_masks(topo)?;
        let rules = masks.len() as u32;
        // LMC large enough for 2L virtual LIDs per node.
        let lmc = (usize::BITS - (masks.len() - 1).leading_zeros()) as u8;
        let lid_map = LidMap::new(topo, lmc, LidPolicy::Sequential);
        let mut routes = Routes::new(topo, lid_map, "parx-nd");
        let mut weights = EdgeWeights::new(topo);
        let norm = self.demand.as_ref().map(|d| d.normalized());

        let listed: Vec<NodeId> = self
            .demand
            .as_ref()
            .map(|d| d.listed_destinations())
            .unwrap_or_default();
        let mut is_listed = vec![false; topo.num_nodes()];
        for &n in &listed {
            is_listed[n.idx()] = true;
        }
        let rest: Vec<NodeId> = topo.nodes().filter(|n| !is_listed[n.idx()]).collect();

        for (phase_listed, dests) in [(true, &listed), (false, &rest)] {
            for &nd in dests {
                let (dsw, dlink) = topo.node_switch(nd);
                for x in 0..rules {
                    let lid = routes.lid_map.lid(nd, x);
                    let tree = dijkstra_to_dest(topo, dsw, &weights, Some(&masks[x as usize]));
                    install_tree(&mut routes, &tree, lid, dlink);
                    if tree
                        .out
                        .iter()
                        .enumerate()
                        .any(|(s, o)| o.is_none() && s != dsw.idx())
                    {
                        let full = dijkstra_to_dest(topo, dsw, &weights, None);
                        for s in topo.switches() {
                            if s != dsw && !tree.reachable(s) {
                                if let Some(link) = full.out[s.idx()] {
                                    routes.set(s, lid, link);
                                }
                            }
                        }
                    }
                    if phase_listed {
                        let norm = norm.as_ref().expect("listed implies demand");
                        for (nx, w) in norm.senders_to(nd) {
                            let (ssw, _) = topo.node_switch(nx);
                            if nx == nd || ssw == dsw {
                                continue;
                            }
                            walk_lft(topo, &routes, ssw, lid, |dl| weights.add(dl, w as u64))?;
                        }
                    } else {
                        for nx in topo.nodes() {
                            let (ssw, _) = topo.node_switch(nx);
                            if nx == nd || ssw == dsw {
                                continue;
                            }
                            walk_lft(topo, &routes, ssw, lid, |dl| weights.add(dl, 1))?;
                        }
                    }
                }
                // Unused LID slots (2^lmc may exceed 2L): mirror LID0 so
                // round-robin PMLs stay functional.
                for x in rules..routes.lid_map.lids_per_node() {
                    let lid0 = routes.lid_map.lid(nd, 0);
                    let lid = routes.lid_map.lid(nd, x);
                    for s in topo.switches() {
                        if let Some(out) = routes.get(s, lid0) {
                            routes.set(s, lid, out);
                        }
                    }
                }
            }
        }

        let max_vls = if self.max_vls == 0 { 8 } else { self.max_vls };
        assign_vls(topo, &mut routes, max_vls)?;
        Ok(routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::lid_choices;
    use crate::verify::{verify_deadlock_free, verify_paths};
    use hxtopo::hyperx::HyperXConfig;
    use hxtopo::props::bfs_dist;

    #[test]
    fn two_d_selection_supersets_table1() {
        // On a 2-D HyperX the generalized valid set must contain every
        // Table-1 choice (the paper picks a balanced subset).
        let topo = HyperXConfig::new(vec![4, 4], 1).build();
        let hx = topo.meta.as_hyperx().unwrap().clone();
        for a in topo.switches() {
            for b in topo.switches() {
                let (ca, cb) = (hx.coord(a), hx.coord(b));
                let (qa, qb) = (hx.quadrant(a).unwrap(), hx.quadrant(b).unwrap());
                for size in [SizeClass::Small, SizeClass::Large] {
                    let nd = lid_choices_nd(&hx.shape, &ca, &cb, size);
                    for &x in lid_choices(qa, qb, size) {
                        assert!(
                            nd.contains(&x),
                            "{qa:?}->{qb:?} {size:?}: Table1 {x} not in nd {nd:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn three_d_routes_verify() {
        let topo = HyperXConfig::new(vec![4, 4, 2], 1).build();
        let routes = ParxNd::default().route(&topo).unwrap();
        // 6 rules => LMC 3 => 8 LIDs per node, all must route.
        assert_eq!(routes.lid_map.lids_per_node(), 8);
        verify_paths(&topo, &routes).unwrap();
        let vls = verify_deadlock_free(&topo, &routes).unwrap();
        assert!(vls <= 8, "{vls} VLs");
    }

    #[test]
    fn three_d_small_lids_minimal_large_detour() {
        let topo = HyperXConfig::new(vec![4, 4, 2], 1).build();
        let hx = topo.meta.as_hyperx().unwrap().clone();
        let routes = ParxNd::default().route(&topo).unwrap();
        let mut detours = 0usize;
        for src in topo.nodes() {
            let (ssw, _) = topo.node_switch(src);
            let dist = bfs_dist(&topo, ssw);
            let cs = hx.coord(ssw);
            for dst in topo.nodes() {
                if src == dst {
                    continue;
                }
                let (dsw, _) = topo.node_switch(dst);
                if dsw == ssw {
                    continue;
                }
                let cd = hx.coord(dsw);
                let minimal = dist[dsw.idx()];
                for &x in &lid_choices_nd(&hx.shape, &cs, &cd, SizeClass::Small) {
                    let p = routes.path_to(&topo, src, dst, x as u32).unwrap();
                    assert_eq!(p.isl_hops(), minimal, "small {src}->{dst} LID{x}");
                }
                for &x in &lid_choices_nd(&hx.shape, &cs, &cd, SizeClass::Large) {
                    let p = routes.path_to(&topo, src, dst, x as u32).unwrap();
                    assert!(p.isl_hops() >= minimal);
                    if p.isl_hops() > minimal {
                        detours += 1;
                    }
                }
            }
        }
        assert!(detours > 0, "3-D detours must exist");
    }

    #[test]
    fn rejects_odd_extents() {
        let topo = HyperXConfig::new(vec![3, 4], 1).build();
        assert!(matches!(
            ParxNd::default().route(&topo),
            Err(RouteError::UnsupportedTopology(_))
        ));
    }

    #[test]
    fn one_d_hyperx_works() {
        // 1-D even HyperX: two rules, LMC 1.
        let topo = HyperXConfig::new(vec![6], 2).build();
        let routes = ParxNd::default().route(&topo).unwrap();
        assert_eq!(routes.lid_map.lids_per_node(), 2);
        verify_paths(&topo, &routes).unwrap();
        verify_deadlock_free(&topo, &routes).unwrap();
    }

    #[test]
    fn select_lid_nd_is_member() {
        let shape = vec![4u32, 4, 2];
        for disc in 0..10u64 {
            let x = select_lid_nd(&shape, &[0, 0, 0], &[3, 3, 1], SizeClass::Small, disc);
            assert!(lid_choices_nd(&shape, &[0, 0, 0], &[3, 3, 1], SizeClass::Small).contains(&x));
        }
    }
}
