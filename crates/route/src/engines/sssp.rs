//! OpenSM-style SSSP routing (Hoefler, Schneider, Lumsdaine, HOTI'09):
//! hop-minimal paths, globally balanced by counting the number of
//! source-destination paths already assigned to every directed cable.

use super::{fill_weighted_minimal, RoutingEngine};
use crate::lft::{RouteError, Routes};
use crate::lid::{LidMap, LidPolicy};
use hxtopo::Topology;

/// SSSP routing configuration.
#[derive(Debug, Clone, Default)]
pub struct Sssp {
    /// LID mask control (extra LIDs per node; SSSP itself uses them only for
    /// additional balancing).
    pub lmc: u8,
}

impl RoutingEngine for Sssp {
    fn name(&self) -> &'static str {
        "sssp"
    }

    fn route(&self, topo: &Topology) -> Result<Routes, RouteError> {
        let lid_map = LidMap::new(topo, self.lmc, LidPolicy::Sequential);
        let mut routes = Routes::new(topo, lid_map, "sssp");
        fill_weighted_minimal(topo, &mut routes, 1)?;
        Ok(routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_paths, PathStats};
    use hxtopo::fattree::FatTreeConfig;
    use hxtopo::hyperx::HyperXConfig;

    #[test]
    fn sssp_routes_hyperx_minimally() {
        let t = HyperXConfig::new(vec![4, 4], 2).build();
        let r = Sssp::default().route(&t).unwrap();
        let stats: PathStats = verify_paths(&t, &r).unwrap();
        // 2-D HyperX: at most 2 ISL hops.
        assert!(stats.max_isl_hops <= 2, "{stats:?}");
        assert_eq!(stats.pairs, 32 * 31);
    }

    #[test]
    fn sssp_routes_fattree() {
        let t = FatTreeConfig::k_ary_n_tree(4, 2);
        let r = Sssp::default().route(&t).unwrap();
        let stats = verify_paths(&t, &r).unwrap();
        // 2-level tree: at most 2 ISLs (up, down).
        assert!(stats.max_isl_hops <= 2, "{stats:?}");
    }

    #[test]
    fn sssp_balances_vs_minhop() {
        use super::super::MinHop;
        // On a HyperX, SSSP must spread destination trees over more distinct
        // cables than the unbalanced min-hop baseline.
        let t = HyperXConfig::new(vec![4, 4], 4).build();
        let sssp = Sssp::default().route(&t).unwrap();
        let minhop = MinHop::default().route(&t).unwrap();
        let spread = |r: &Routes| {
            let mut used = std::collections::HashSet::new();
            for src in t.nodes() {
                for (lid, dst) in r.lid_map.lids() {
                    if dst == src {
                        continue;
                    }
                    for h in r.path(&t, src, lid).unwrap().hops {
                        used.insert(h);
                    }
                }
            }
            used.len()
        };
        assert!(
            spread(&sssp) >= spread(&minhop),
            "sssp should use at least as many directed cables"
        );
    }

    #[test]
    fn sssp_survives_faults() {
        use hxtopo::faults::FaultPlan;
        let mut t = HyperXConfig::t2_hyperx(70).build();
        FaultPlan::t2_hyperx().apply(&mut t);
        let r = Sssp::default().route(&t).unwrap();
        verify_paths(&t, &r).unwrap();
    }

    #[test]
    fn sssp_with_lmc_provides_multiple_lids() {
        let t = HyperXConfig::new(vec![3, 3], 1).build();
        let r = Sssp { lmc: 2 }.route(&t).unwrap();
        assert_eq!(r.lid_map.lids_per_node(), 4);
        verify_paths(&t, &r).unwrap();
    }
}
