//! Delta-encoded compact path store: first ISL hop per `(switch, LID)`.
//!
//! [`crate::pathdb::PathDb`] materializes every ISL hop vector, which is
//! the right trade for a single 96-switch plane but grows as
//! `pairs x avg_hops` — a K-plane 12x8 system or a 32x32 plane multiplies
//! that again per shard. [`DeltaPathDb`] exploits that LFT forwarding is
//! *destination-based*: the walk from switch `s` towards LID `l` continues
//! exactly as the walk from its next switch, so paths are suffix-consistent
//! and one stored hop per `(switch, LID)` pair reconstructs every full
//! vector by chaining. That is one `u32` per pair against the CSR's
//! `~(1 + avg_hops)` — roughly 3x smaller on a HyperX plane — at the cost
//! of a topology lookup per reconstructed hop.
//!
//! Resolution is bit-identical to the CSR store by construction; the
//! proptests in `crates/route/tests/planeset.rs` pin that over random
//! fault sequences.

use crate::lft::{DirLink, RouteError, Routes};
use crate::lid::Lid;
use crate::pathdb::{auto_threads, PathDb};
use hxtopo::{Endpoint, NodeId, SwitchId, Topology};

/// Sentinel "no stored hop" entry (`DirLink` payloads never use the full
/// u32 range: link indices are shifted left by the direction bit).
const NONE: u32 = u32::MAX;

/// One destination LID's first-hop column (dense over switches, `NONE`
/// where the walk never visits or delivery is local).
type Column = Vec<u32>;

/// Delta-encoded per-`(switch, destination LID)` path store: the first ISL
/// hop of each pair, chained through the topology at resolve time.
///
/// Side tables (node attachment, LID ownership, terminal hops) match
/// [`PathDb`], so `[node_up] ++ chain(switch, lid) ++ [dst_down]`
/// reconstructs the identical full path.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaPathDb {
    epoch: u64,
    num_switches: usize,
    lid_space: usize,
    engine: &'static str,
    /// First directed ISL hop, indexed `lid * num_switches + switch`;
    /// `NONE` where no hop is stored.
    first_hop: Vec<u32>,
    /// Switch index per node.
    node_sw: Vec<u32>,
    /// Directed terminal hop leaving each node.
    node_up: Vec<DirLink>,
    /// Owner node index per LID (`u32::MAX` = unowned).
    owner: Vec<u32>,
    /// Directed terminal hop arriving at each LID's owner.
    dst_down: Vec<DirLink>,
}

/// Extracts one destination LID's first-hop column by walking the LFT from
/// every node-bearing source switch, validating arrival and link liveness
/// exactly like the CSR build; intermediate switches on a walk get their
/// hop recorded too, so chaining never dead-ends.
fn build_column(
    topo: &Topology,
    routes: &Routes,
    src_switches: &[SwitchId],
    lid: Lid,
    owner: NodeId,
) -> Result<Column, RouteError> {
    let (dsw, _) = topo.node_switch(owner);
    let mut col = vec![NONE; topo.num_switches()];
    for &start in src_switches {
        let mut sw = start;
        // Bound the walk by the switch count (a loop must revisit within
        // it); already-recorded switches terminate early — their suffix
        // was validated by a previous walk.
        let mut walked = 0usize;
        while sw != dsw && col[sw.idx()] == NONE {
            let out = routes
                .get(sw, lid)
                .ok_or(RouteError::NoRoute { switch: sw, lid })?;
            if !topo.is_active(out) {
                return Err(RouteError::NoRoute { switch: sw, lid });
            }
            let dl = DirLink::leaving(topo, out, Endpoint::Switch(sw));
            match dl.head(topo) {
                // The owner attaches to exactly `dsw`, so terminal delivery
                // from any other switch is a misroute.
                Endpoint::Node(_) => return Err(RouteError::NoRoute { switch: sw, lid }),
                Endpoint::Switch(next) => {
                    col[sw.idx()] = dl.index() as u32;
                    sw = next;
                }
            }
            walked += 1;
            if walked > topo.num_switches() {
                return Err(RouteError::ForwardingLoop { lid, at: sw });
            }
        }
    }
    Ok(col)
}

impl DeltaPathDb {
    /// Builds the delta store from installed forwarding state, walking the
    /// LFT of every `(node-bearing switch, destination LID)` pair — the
    /// same chunked `std::thread::scope` parallel build as
    /// [`PathDb::build`] (`threads == 0` = [`auto_threads`]), byte-identical
    /// regardless of thread count, lowest-failing-LID error.
    pub fn build(
        topo: &Topology,
        routes: &Routes,
        epoch: u64,
        threads: usize,
    ) -> Result<DeltaPathDb, RouteError> {
        let lid_space = routes.lid_space();
        let src_switches: Vec<SwitchId> = topo
            .switches()
            .filter(|&s| topo.attached_nodes(s).next().is_some())
            .collect();
        let lid_map = &routes.lid_map;
        let threads = if threads == 0 {
            auto_threads()
        } else {
            threads
        }
        .clamp(1, lid_space.max(1));

        let mut cols: Vec<Option<Column>> = Vec::with_capacity(lid_space);
        cols.resize_with(lid_space, || None);
        if threads == 1 {
            for (l, slot) in cols.iter_mut().enumerate() {
                if let Some(owner) = lid_map.owner(l as Lid) {
                    *slot = Some(build_column(topo, routes, &src_switches, l as Lid, owner)?);
                }
            }
        } else {
            let chunk = lid_space.div_ceil(threads);
            let mut errs: Vec<Option<(Lid, RouteError)>> = vec![None; threads];
            std::thread::scope(|scope| {
                for (ci, (slots, err)) in cols.chunks_mut(chunk).zip(errs.iter_mut()).enumerate() {
                    let base = (ci * chunk) as Lid;
                    let src_switches = &src_switches;
                    scope.spawn(move || {
                        for (off, slot) in slots.iter_mut().enumerate() {
                            let lid = base + off as Lid;
                            let Some(owner) = lid_map.owner(lid) else {
                                continue;
                            };
                            match build_column(topo, routes, src_switches, lid, owner) {
                                Ok(c) => *slot = Some(c),
                                Err(e) => {
                                    *err = Some((lid, e));
                                    return;
                                }
                            }
                        }
                    });
                }
            });
            if let Some((_, e)) = errs.into_iter().flatten().min_by_key(|&(l, _)| l) {
                return Err(e);
            }
        }

        let s = topo.num_switches();
        let mut first_hop = vec![NONE; lid_space * s];
        for (lid, col) in cols.iter().enumerate() {
            if let Some(col) = col {
                first_hop[lid * s..(lid + 1) * s].copy_from_slice(col);
            }
        }
        Ok(DeltaPathDb {
            epoch,
            num_switches: s,
            lid_space,
            engine: routes.engine,
            first_hop,
            node_sw: Self::node_sw_table(topo),
            node_up: Self::node_up_table(topo),
            owner: Self::owner_table(routes, lid_space),
            dst_down: Self::dst_down_table(topo, routes, lid_space),
        })
    }

    /// Exact conversion from a CSR store: every stored hop vector's hops
    /// are scattered to their tail switches. Resolution over the result is
    /// bit-identical to the source (suffix consistency), without touching
    /// the forwarding tables again.
    pub fn from_pathdb(db: &PathDb, topo: &Topology) -> DeltaPathDb {
        let s = topo.num_switches();
        let lid_space = db.lid_space();
        let mut first_hop = vec![NONE; lid_space * s];
        for lid in 0..lid_space {
            for sw in topo.switches() {
                for &dl in db.isl_path(sw, lid as Lid) {
                    let Endpoint::Switch(tail) = dl.tail(topo) else {
                        continue;
                    };
                    first_hop[lid * s + tail.idx()] = dl.index() as u32;
                }
            }
        }
        let routes_owner: Vec<u32> = (0..lid_space)
            .map(|l| db.lid_owner(l as Lid).map_or(u32::MAX, |n| n.0))
            .collect();
        let dst_down: Vec<DirLink> = (0..lid_space).map(|l| db.dst_down_hop(l as Lid)).collect();
        DeltaPathDb {
            epoch: db.epoch(),
            num_switches: s,
            lid_space,
            engine: db.engine(),
            first_hop,
            node_sw: Self::node_sw_table(topo),
            node_up: Self::node_up_table(topo),
            owner: routes_owner,
            dst_down,
        }
    }

    fn node_sw_table(topo: &Topology) -> Vec<u32> {
        topo.nodes().map(|n| topo.node_switch(n).0 .0).collect()
    }

    fn node_up_table(topo: &Topology) -> Vec<DirLink> {
        topo.nodes()
            .map(|n| {
                let (_, up) = topo.node_switch(n);
                DirLink::leaving(topo, up, Endpoint::Node(n))
            })
            .collect()
    }

    fn owner_table(routes: &Routes, lid_space: usize) -> Vec<u32> {
        let mut owner = vec![u32::MAX; lid_space];
        for (lid, o) in routes.lid_map.lids() {
            owner[lid as usize] = o.0;
        }
        owner
    }

    fn dst_down_table(topo: &Topology, routes: &Routes, lid_space: usize) -> Vec<DirLink> {
        let mut dst_down = vec![DirLink::from_index(0); lid_space];
        for (lid, o) in routes.lid_map.lids() {
            let (dsw, down) = topo.node_switch(o);
            dst_down[lid as usize] = DirLink::leaving(topo, down, Endpoint::Switch(dsw));
        }
        dst_down
    }

    /// Sweep epoch that produced this store.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Routing engine that produced the underlying forwarding state.
    pub fn engine(&self) -> &'static str {
        self.engine
    }

    /// LID-space size.
    pub fn lid_space(&self) -> usize {
        self.lid_space
    }

    /// The full node-to-node hop vector into a caller buffer (cleared
    /// first), chaining stored first hops through `topo` — same contract
    /// as [`PathDb::node_path_into`]: `false` for unowned LIDs (or a
    /// chain dead-end), `true` with an empty buffer for self-sends.
    pub fn node_path_into(
        &self,
        topo: &Topology,
        src: NodeId,
        dst_lid: Lid,
        out: &mut Vec<DirLink>,
    ) -> bool {
        out.clear();
        let Some(&o) = self.owner.get(dst_lid as usize) else {
            return false;
        };
        if o == u32::MAX {
            return false;
        }
        if o == src.0 {
            return true;
        }
        let dsw = self.node_sw[o as usize];
        let mut sw = self.node_sw[src.idx()];
        out.push(self.node_up[src.idx()]);
        let base = dst_lid as usize * self.num_switches;
        let mut walked = 0usize;
        while sw != dsw {
            let raw = self.first_hop[base + sw as usize];
            if raw == NONE {
                out.clear();
                return false;
            }
            let dl = DirLink::from_index(raw as usize);
            out.push(dl);
            let Endpoint::Switch(next) = dl.head(topo) else {
                out.clear();
                return false;
            };
            sw = next.0;
            walked += 1;
            if walked > self.num_switches {
                out.clear();
                return false;
            }
        }
        out.push(self.dst_down[dst_lid as usize]);
        true
    }

    /// Allocating convenience over [`DeltaPathDb::node_path_into`].
    pub fn node_path(&self, topo: &Topology, src: NodeId, dst_lid: Lid) -> Option<Vec<DirLink>> {
        let mut hops = Vec::new();
        self.node_path_into(topo, src, dst_lid, &mut hops)
            .then_some(hops)
    }

    /// Approximate heap footprint in bytes of the path payload plus side
    /// tables — the number EXPERIMENTS.md compares against
    /// [`PathDb::approx_bytes`].
    pub fn approx_bytes(&self) -> usize {
        self.first_hop.len() * 4
            + self.node_sw.len() * 4
            + self.node_up.len() * 4
            + self.owner.len() * 4
            + self.dst_down.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::{Dfsssp, MinHop, Parx, RoutingEngine};
    use hxtopo::hyperx::HyperXConfig;

    fn hx() -> Topology {
        HyperXConfig::new(vec![4, 4], 2).build()
    }

    #[test]
    fn delta_resolves_identically_to_csr() {
        let t = hx();
        for routes in [
            MinHop::default().route(&t).unwrap(),
            Dfsssp::default().route(&t).unwrap(),
            Parx::default().route(&t).unwrap(),
        ] {
            let csr = PathDb::build(&t, &routes, 1, 0).unwrap();
            let delta = DeltaPathDb::build(&t, &routes, 1, 0).unwrap();
            let mut a = Vec::new();
            let mut b = Vec::new();
            for src in t.nodes() {
                for lid in 0..routes.lid_space() as Lid {
                    let ok_a = csr.node_path_into(src, lid, &mut a);
                    let ok_b = delta.node_path_into(&t, src, lid, &mut b);
                    assert_eq!(ok_a, ok_b, "{src} lid {lid}");
                    assert_eq!(a, b, "{src} lid {lid}");
                }
            }
        }
    }

    #[test]
    fn from_pathdb_equals_direct_build() {
        let t = hx();
        let routes = Dfsssp::default().route(&t).unwrap();
        let csr = PathDb::build(&t, &routes, 5, 0).unwrap();
        let direct = DeltaPathDb::build(&t, &routes, 5, 0).unwrap();
        let converted = DeltaPathDb::from_pathdb(&csr, &t);
        // The conversion only sees hops some source actually uses, so its
        // table is a subset of the direct build's; resolution must agree.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for src in t.nodes() {
            for lid in 0..routes.lid_space() as Lid {
                assert_eq!(
                    direct.node_path_into(&t, src, lid, &mut a),
                    converted.node_path_into(&t, src, lid, &mut b)
                );
                assert_eq!(a, b);
            }
        }
        assert_eq!(converted.epoch(), 5);
    }

    #[test]
    fn parallel_build_is_byte_identical() {
        let t = hx();
        let routes = Dfsssp::default().route(&t).unwrap();
        let seq = DeltaPathDb::build(&t, &routes, 1, 1).unwrap();
        for threads in [2, 3, 7] {
            assert_eq!(seq, DeltaPathDb::build(&t, &routes, 1, threads).unwrap());
        }
    }

    #[test]
    fn delta_is_measurably_smaller_than_csr() {
        let t = HyperXConfig::new(vec![6, 4], 4).build();
        let routes = Dfsssp::default().route(&t).unwrap();
        let csr = PathDb::build(&t, &routes, 1, 0).unwrap();
        let delta = DeltaPathDb::build(&t, &routes, 1, 0).unwrap();
        assert!(
            (delta.approx_bytes() as f64) < 0.7 * csr.approx_bytes() as f64,
            "delta {} vs csr {}",
            delta.approx_bytes(),
            csr.approx_bytes()
        );
    }

    #[test]
    fn build_detects_broken_tables() {
        let t = hx();
        let mut r = MinHop::default().route(&t).unwrap();
        let (lid, _) = r.lid_map.lids().next().unwrap();
        r.clear(hxtopo::SwitchId(15), lid);
        assert!(DeltaPathDb::build(&t, &r, 1, 4).is_err());
    }
}
