//! Engine-capability integration properties (PR 8).
//!
//! Two acceptance properties for the pluggable-engine refactor:
//!
//! * **FT-HyperX engine-owned repair is exact**: after any interleaving of
//!   cable failures and recoveries driven through the subnet manager, the
//!   live forwarding state is bit-identical to what a from-scratch
//!   FT-HyperX sweep of the *current* (faulted) topology would produce.
//!   The history-free argmin rule makes this possible; this test makes it
//!   enforceable.
//! * **FatPaths layers are what they claim**: for every layer and any mask
//!   seed, sources the layer's mask leaves connected route to every
//!   destination using only mask-usable cables (true layer disjointness),
//!   sources the mask cut off still route via the footnote-7 full-lattice
//!   fallback, and the whole multi-layer LFT stays deadlock-free under the
//!   channel-dependency-graph checker.

use hxroute::engines::{FatPaths, FtHyperX, RoutingEngine};
use hxroute::{
    dijkstra_to_dest, verify_deadlock_free, verify_paths, EdgeWeights, Lid, Routes, SubnetManager,
};
use hxtopo::hyperx::HyperXConfig;
use hxtopo::{Endpoint, LinkClass, LinkId, SwitchId, Topology};
use proptest::prelude::*;

fn active_isls(topo: &Topology) -> Vec<LinkId> {
    topo.links()
        .filter(|&(id, l)| l.class != LinkClass::Terminal && topo.is_active(id))
        .map(|(id, _)| id)
        .collect()
}

fn inactive_isls(topo: &Topology) -> Vec<LinkId> {
    topo.links()
        .filter(|&(id, l)| l.class != LinkClass::Terminal && !topo.is_active(id))
        .map(|(id, _)| id)
        .collect()
}

/// Follows the LFT from `from` towards `lid`'s destination switch `dsw`,
/// returning the ISLs traversed. Panics on a forwarding hole or loop.
fn walk_isls(
    topo: &Topology,
    routes: &Routes,
    from: SwitchId,
    lid: Lid,
    dsw: SwitchId,
) -> Vec<LinkId> {
    let mut cur = from;
    let mut path = Vec::new();
    for _ in 0..=topo.num_switches() {
        if cur == dsw {
            return path;
        }
        let out = routes
            .get(cur, lid)
            .unwrap_or_else(|| panic!("forwarding hole at {cur:?} for LID {lid}"));
        path.push(out);
        match topo.link(out).other(Endpoint::Switch(cur)) {
            Some(Endpoint::Switch(s)) => cur = s,
            other => panic!("LFT at {cur:?} for LID {lid} leaves the switch fabric: {other:?}"),
        }
    }
    panic!("forwarding loop walking LID {lid} from {from:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// FT-HyperX's engine-owned `on_fail`/`on_recover` deltas leave the
    /// manager's live LFTs bit-identical to a from-scratch sweep of the
    /// faulted lattice, across random fail/recover interleavings. Even a
    /// rolled-back (disconnecting) failure must leave the state exact.
    #[test]
    fn ft_hyperx_engine_repair_tracks_full_resweep(
        t in 1u32..3,
        ops in proptest::collection::vec((0u8..=255, 0usize..10_000), 1..12),
    ) {
        let topo = HyperXConfig::new(vec![4, 4], t).build();
        let mut sm = SubnetManager::new(topo, Box::new(FtHyperX::default()));
        sm.verify = false;
        sm.sweep().unwrap();
        prop_assert!(sm.engine_owns_repair(), "FT-HyperX must expose IncrementalRepair");
        for &(sel, k) in &ops {
            let down = inactive_isls(sm.topo());
            let outcome = if sel % 2 == 1 && !down.is_empty() {
                sm.recover_link(down[k % down.len()])
            } else {
                let up = active_isls(sm.topo());
                if up.is_empty() {
                    break;
                }
                sm.fail_link(up[k % up.len()])
            };
            let fresh = FtHyperX::default()
                .route(sm.topo())
                .map_err(|e| TestCaseError::Fail(format!("fresh sweep failed: {e}")))?;
            prop_assert!(
                sm.routes().unwrap().lft_eq(&fresh),
                "engine-patched LFTs diverge from a from-scratch sweep (outcome {:?})",
                outcome.map(|r| r.incremental)
            );
        }
    }

    /// FatPaths per-layer mask correctness for arbitrary seeds: sources the
    /// layer's mask keeps connected use only mask-usable cables; sources it
    /// cuts off still reach every destination (footnote-7 fallback); the
    /// combined multi-layer LFT routes all pairs deadlock-free.
    #[test]
    fn fatpaths_layers_respect_masks_and_stay_deadlock_free(seed in 0u64..1_000_000) {
        let topo = HyperXConfig::new(vec![4, 4], 1).build();
        let engine = FatPaths { seed, ..FatPaths::default() };
        let routes = engine.route(&topo).unwrap();
        let stats = verify_paths(&topo, &routes)
            .map_err(|e| TestCaseError::Fail(format!("verify_paths: {e}")))?;
        let n = topo.num_nodes();
        prop_assert_eq!(stats.pairs, n * (n - 1) * engine.layers as usize);
        verify_deadlock_free(&topo, &routes)
            .map_err(|e| TestCaseError::Fail(format!("CDG checker: {e}")))?;
        let weights = EdgeWeights::new(&topo);
        for layer in 0..engine.layers {
            let mask = engine.layer_mask(&topo, layer);
            for dst in topo.nodes() {
                let (dsw, _) = topo.node_switch(dst);
                let lid = routes.lid_map.lid(dst, layer as u32);
                let tree = dijkstra_to_dest(&topo, dsw, &weights, Some(&mask));
                for ssw in topo.switches() {
                    if ssw == dsw {
                        continue;
                    }
                    // Every switch routes — the mask-disconnected ones via
                    // their full-lattice fallback entry.
                    let path = walk_isls(&topo, &routes, ssw, lid, dsw);
                    prop_assert!(!path.is_empty());
                    if tree.reachable(ssw) {
                        for l in path {
                            prop_assert!(
                                mask[l.0 as usize],
                                "layer {layer} path from {ssw:?} uses masked cable {l:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Distinct seeds produce distinct layer masks (the layers genuinely
/// differ between tournament configurations, not just in name).
#[test]
fn fatpaths_masks_vary_with_seed() {
    let topo = HyperXConfig::new(vec![4, 4], 1).build();
    let a = FatPaths {
        seed: 1,
        ..FatPaths::default()
    };
    let b = FatPaths {
        seed: 2,
        ..FatPaths::default()
    };
    assert_ne!(a.layer_mask(&topo, 1), b.layer_mask(&topo, 1));
    // Layer 0 is the unmasked safety net regardless of seed.
    assert!(a.layer_mask(&topo, 0).iter().all(|&u| u));
}
