//! Property-based multi-plane store tests: resolving through the sharded
//! [`PlaneSet`] handle must be bit-identical to resolving against each
//! plane's own monolithic [`PathDb`], over any random per-plane fault
//! sequence — and the delta-encoded [`DeltaPathDb`] must resolve
//! identically to the CSR store it compacts at every step.

use hxroute::engines::{Dfsssp, MinHop, Parx, RoutingEngine, Sssp};
use hxroute::{DeltaPathDb, Lid, PathDb, PlaneSet, SubnetManager};
use hxtopo::hyperx::HyperXConfig;
use hxtopo::{LinkClass, LinkId, Topology};
use proptest::prelude::*;
use std::sync::Arc;

fn plane_engines(k: usize) -> Vec<Box<dyn RoutingEngine>> {
    // Distinct engines per plane so shard contents genuinely differ.
    let mut v: Vec<Box<dyn RoutingEngine>> = vec![
        Box::new(Dfsssp::default()),
        Box::new(MinHop::default()),
        Box::new(Sssp::default()),
        Box::new(Parx::default()),
    ];
    v.truncate(k);
    v
}

fn active_isls(topo: &Topology) -> Vec<LinkId> {
    topo.links()
        .filter(|&(id, l)| l.class != LinkClass::Terminal && topo.is_active(id))
        .map(|(id, _)| id)
        .collect()
}

/// Every `(plane, src, lid)` resolution through the shared handle equals
/// the per-plane monolithic store's answer, bitwise; and a delta store
/// built from the same live forwarding state agrees with both.
fn assert_planes_equal(set: &PlaneSet, sms: &[SubnetManager]) {
    let mut via_set = Vec::new();
    let mut via_db = Vec::new();
    let mut via_delta = Vec::new();
    for (plane, sm) in sms.iter().enumerate() {
        let topo = sm.topo();
        let routes = sm.routes().unwrap();
        let mono = PathDb::build(topo, routes, set.epoch(plane), 1).unwrap();
        let delta = DeltaPathDb::build(topo, routes, set.epoch(plane), 1).unwrap();
        for src in topo.nodes() {
            for lid in 0..routes.lid_space() as Lid {
                let a = set.node_path_into(plane, src, lid, &mut via_set);
                let b = mono.node_path_into(src, lid, &mut via_db);
                let c = delta.node_path_into(topo, src, lid, &mut via_delta);
                assert_eq!(a, b, "plane {plane} {src} lid {lid}: set vs mono");
                assert_eq!(via_set, via_db, "plane {plane} {src} lid {lid}");
                assert_eq!(b, c, "plane {plane} {src} lid {lid}: mono vs delta");
                assert_eq!(via_db, via_delta, "plane {plane} {src} lid {lid}");
            }
        }
    }
}

/// Drives interleaved per-plane fail/recover events, propagating each
/// plane's patched store into its shard, and checks full bitwise
/// equivalence after every event.
fn check_multi_plane_churn(k: usize, ops: &[(u8, usize)]) -> Result<(), TestCaseError> {
    let topo = HyperXConfig::new(vec![4, 4], 2).build();
    let mut sms: Vec<SubnetManager> = plane_engines(k)
        .into_iter()
        .map(|engine| {
            let mut sm = SubnetManager::new(topo.clone(), engine);
            sm.verify = false;
            sm.sweep().unwrap();
            sm
        })
        .collect();
    let set = PlaneSet::new(sms.iter().map(|sm| sm.pathdb().unwrap().clone()).collect());
    prop_assert_eq!(set.num_planes(), k);

    for &(sel, idx) in ops {
        let plane = (sel as usize) % k;
        let sm = &mut sms[plane];
        let down: Vec<LinkId> = sm
            .topo()
            .links()
            .filter(|&(id, l)| l.class != LinkClass::Terminal && !sm.topo().is_active(id))
            .map(|(id, _)| id)
            .collect();
        let recover = (sel / 16) % 2 == 1 && !down.is_empty();
        if recover {
            let _ = sm.recover_link(down[idx % down.len()]);
        } else {
            let up = active_isls(sm.topo());
            if up.is_empty() {
                continue;
            }
            let _ = sm.fail_link(up[idx % up.len()]);
        }
        // Live epoch propagation: only this plane's shard moves.
        let before = set.epochs();
        set.install(plane, sm.pathdb().unwrap().clone());
        for (p, (&eb, &ea)) in before.iter().zip(set.epochs().iter()).enumerate() {
            if p != plane {
                prop_assert_eq!(eb, ea, "plane {} shard moved spuriously", p);
            }
        }
        assert_planes_equal(&set, &sms);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sharded resolution == per-plane monolithic resolution (and delta ==
    /// CSR) over random per-plane fault/recover interleavings, for 2- and
    /// 3-plane systems.
    #[test]
    fn planeset_matches_monolithic_under_churn(
        k in 2usize..4,
        ops in proptest::collection::vec((0u8..=255, 0usize..10_000), 1..5),
    ) {
        check_multi_plane_churn(k, &ops)?;
    }
}

/// A 4-plane set built in one call resolves like four independent builds.
#[test]
fn four_plane_build_matches_independent_builds() {
    let topo = HyperXConfig::new(vec![4, 4], 1).build();
    let routes: Vec<_> = plane_engines(4)
        .into_iter()
        .map(|e| e.route(&topo).unwrap())
        .collect();
    let planes: Vec<(&Topology, &hxroute::Routes)> = routes.iter().map(|r| (&topo, r)).collect();
    let set = PlaneSet::build(&planes, 7, 0).unwrap();
    assert_eq!(set.num_planes(), 4);
    assert_eq!(set.epochs(), vec![7, 7, 7, 7]);
    for (p, r) in routes.iter().enumerate() {
        let solo = Arc::new(PathDb::build(&topo, r, 7, 1).unwrap());
        assert!(set.shard(p).content_eq(&solo));
    }
}
