//! Property-based routing tests: for arbitrary HyperX shapes, fault
//! patterns and engines, the paper's Section-3.2 criteria hold — every
//! destination reachable, forwarding loop-free, and the VL layering
//! deadlock-free.

use hxroute::engines::{Dfsssp, MinHop, Parx, RoutingEngine, Sssp, UpDown};
use hxroute::{verify_deadlock_free, verify_paths, Demand};
use hxtopo::faults::{FaultCount, FaultPlan};
use hxtopo::hyperx::HyperXConfig;
use hxtopo::NodeId;
use proptest::prelude::*;

fn engines() -> Vec<Box<dyn RoutingEngine>> {
    vec![
        Box::new(MinHop::default()),
        Box::new(Sssp::default()),
        Box::new(Dfsssp::default()),
        Box::new(UpDown::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every engine produces reachable, loop-free routes on arbitrary
    /// (possibly faulted) HyperX topologies, and the deadlock-free engines
    /// stay within the QDR hardware's 8 VLs.
    #[test]
    fn engines_route_arbitrary_hyperx(
        s1 in 2u32..6,
        s2 in 2u32..5,
        t in 1u32..3,
        faults in 0usize..6,
        seed in 0u64..100,
    ) {
        let mut topo = HyperXConfig::new(vec![s1, s2], t).build();
        FaultPlan { count: FaultCount::Absolute(faults), class: None, seed }
            .apply(&mut topo);
        for engine in engines() {
            let routes = engine.route(&topo).unwrap();
            let stats = verify_paths(&topo, &routes).unwrap();
            prop_assert_eq!(
                stats.pairs,
                topo.num_nodes() * (topo.num_nodes() - 1),
                "{} missed pairs", engine.name()
            );
            if engine.name() == "dfsssp" || engine.name() == "updown" {
                let vls = verify_deadlock_free(&topo, &routes).unwrap();
                prop_assert!(vls <= 8, "{}: {} VLs", engine.name(), vls);
            }
        }
    }

    /// PARX on any even 2-D HyperX: all four virtual LIDs reachable from
    /// everywhere, deadlock-free, and paths never absurdly long (at most
    /// diameter + 2 detour hops).
    #[test]
    fn parx_criteria_on_even_grids(
        half1 in 1u32..4,
        half2 in 1u32..3,
        t in 1u32..3,
        faults in 0usize..4,
        seed in 0u64..50,
    ) {
        let (s1, s2) = (2 * half1, 2 * half2);
        prop_assume!(s1 >= 2 && s2 >= 2);
        let mut topo = HyperXConfig::new(vec![s1, s2], t).build();
        FaultPlan { count: FaultCount::Absolute(faults), class: None, seed }
            .apply(&mut topo);
        let routes = Parx::default().route(&topo).unwrap();
        let stats = verify_paths(&topo, &routes).unwrap();
        prop_assert_eq!(stats.pairs, topo.num_nodes() * (topo.num_nodes() - 1) * 4);
        prop_assert!(stats.max_isl_hops <= 2 + 2 + faults, "max {}", stats.max_isl_hops);
        let vls = verify_deadlock_free(&topo, &routes).unwrap();
        prop_assert!(vls <= 8);
    }

    /// Demand ingestion never breaks PARX's correctness criteria, for any
    /// random demand matrix.
    #[test]
    fn parx_demand_preserves_criteria(
        pairs in proptest::collection::vec((0u32..32, 0u32..32, 1u64..1_000_000), 0..20),
    ) {
        let topo = HyperXConfig::new(vec![4, 4], 2).build();
        let mut demand = Demand::new(topo.num_nodes());
        for (a, b, bytes) in pairs {
            if a != b {
                demand.add(NodeId(a), NodeId(b), bytes);
            }
        }
        let routes = Parx::with_demand(demand).route(&topo).unwrap();
        verify_paths(&topo, &routes).unwrap();
        verify_deadlock_free(&topo, &routes).unwrap();
    }

    /// Engines are pure functions of the topology: same input, same routes.
    #[test]
    fn routing_is_deterministic(s1 in 2u32..5, s2 in 2u32..4) {
        let topo = HyperXConfig::new(vec![s1, s2], 2).build();
        for engine in engines() {
            let a = engine.route(&topo).unwrap();
            let b = engine.route(&topo).unwrap();
            for src in topo.nodes() {
                for (lid, owner) in a.lid_map.lids() {
                    if owner == src { continue; }
                    prop_assert_eq!(
                        a.path(&topo, src, lid).unwrap().hops,
                        b.path(&topo, src, lid).unwrap().hops
                    );
                }
            }
        }
    }

    /// SSSP's balancing never lengthens paths beyond hop-minimal: the
    /// lexicographic cost keeps routes minimal whatever the weights.
    #[test]
    fn sssp_stays_hop_minimal(s1 in 2u32..6, s2 in 2u32..5, t in 1u32..3) {
        let topo = HyperXConfig::new(vec![s1, s2], t).build();
        let routes = Sssp::default().route(&topo).unwrap();
        for src in topo.nodes() {
            let (ssw, _) = topo.node_switch(src);
            let dist = hxtopo::props::bfs_dist(&topo, ssw);
            for (lid, dst) in routes.lid_map.lids() {
                if dst == src { continue; }
                let (dsw, _) = topo.node_switch(dst);
                let p = routes.path(&topo, src, lid).unwrap();
                prop_assert_eq!(p.isl_hops(), dist[dsw.idx()]);
            }
        }
    }
}
