//! Property-based PathDb tests: the incremental fail-in-place patch must be
//! bit-identical to a from-scratch path extraction of the repaired
//! forwarding state, for every routing engine and any fault sequence — and
//! the parallel build must be byte-identical to the single-threaded one.
//!
//! The from-scratch rebuild refuses any path that traverses a deactivated
//! cable, so these properties also prove the affected-tree computation is
//! complete: a single destination tree left unrepaired fails the rebuild.

use hxroute::engines::{
    Dfsssp, FatPaths, FtHyperX, Ftree, Lash, MinHop, Parx, RoutingEngine, Sssp, UpDown,
};
use hxroute::{PathDb, SubnetManager};
use hxtopo::fattree::{FatTreeConfig, Stage};
use hxtopo::hyperx::HyperXConfig;
use hxtopo::{LinkClass, LinkId, Topology};
use proptest::prelude::*;

fn hyperx_engines() -> Vec<Box<dyn RoutingEngine>> {
    vec![
        Box::new(MinHop::default()),
        Box::new(Sssp::default()),
        Box::new(Dfsssp::default()),
        Box::new(UpDown::default()),
        Box::new(Lash::default()),
        Box::new(Parx::default()),
        Box::new(FtHyperX::default()),
        Box::new(FatPaths::default()),
    ]
}

fn fattree_engines() -> Vec<Box<dyn RoutingEngine>> {
    vec![
        Box::new(Ftree),
        Box::new(Sssp::default()),
        Box::new(UpDown::default()),
        Box::new(FatPaths::default()),
    ]
}

/// The 8-leaf staged Clos from `T2hx::mini`.
fn mini_fattree() -> Topology {
    FatTreeConfig {
        name: "fat-tree-mini".into(),
        nodes_per_leaf: 4,
        total_nodes: 32,
        stages: vec![
            Stage {
                count: 8,
                uplinks: 6,
            },
            Stage {
                count: 6,
                uplinks: 4,
            },
            Stage {
                count: 4,
                uplinks: 0,
            },
        ],
    }
    .staged()
}

fn active_isls(topo: &Topology) -> Vec<LinkId> {
    topo.links()
        .filter(|&(id, l)| l.class != LinkClass::Terminal && topo.is_active(id))
        .map(|(id, _)| id)
        .collect()
}

/// Drives a randomized fault sequence through the subnet manager and checks
/// after every failure that the (usually incrementally patched) PathDb is
/// bit-identical to a from-scratch extraction of the live forwarding state.
fn check_fault_sequence(
    topo: &Topology,
    engine: Box<dyn RoutingEngine>,
    kills: &[usize],
) -> Result<(), TestCaseError> {
    let name = engine.name();
    let mut sm = SubnetManager::new(topo.clone(), engine);
    sm.verify = false;
    sm.sweep().unwrap();
    let all_pairs = sm.pathdb().unwrap().stats().pairs;
    for &k in kills {
        let candidates = active_isls(sm.topo());
        if candidates.is_empty() {
            break;
        }
        let victim = candidates[k % candidates.len()];
        // A disconnecting failure rolls back; both outcomes must leave the
        // store equal to a from-scratch rebuild of the live routes.
        let outcome = sm.fail_link(victim);
        let db = sm.pathdb().unwrap();
        let rebuilt = PathDb::build(sm.topo(), sm.routes().unwrap(), db.epoch(), 1)
            .map_err(|e| TestCaseError::Fail(format!("{name}: rebuild failed: {e}")))?;
        prop_assert!(
            db.content_eq(&rebuilt),
            "{name}: patched store diverges from from-scratch rebuild after killing {victim}"
        );
        prop_assert_eq!(db.epoch(), sm.epoch(), "{} epoch stamp", name);
        if let Ok(report) = outcome {
            prop_assert_eq!(report.paths.pairs, all_pairs, "{} lost pairs", name);
        }
    }
    Ok(())
}

fn inactive_isls(topo: &Topology) -> Vec<LinkId> {
    topo.links()
        .filter(|&(id, l)| l.class != LinkClass::Terminal && !topo.is_active(id))
        .map(|(id, _)| id)
        .collect()
}

/// Drives a randomized fail/recover interleaving through the subnet manager
/// and checks after every event that the patched PathDb is bit-identical to
/// a from-scratch extraction of the live forwarding state. Each op is a
/// `(selector, index)` pair: even selectors fail an active ISL, odd ones
/// recover a downed ISL (degrading to a failure while none is down).
fn check_churn_sequence(
    topo: &Topology,
    engine: Box<dyn RoutingEngine>,
    ops: &[(u8, usize)],
) -> Result<(), TestCaseError> {
    let name = engine.name();
    let mut sm = SubnetManager::new(topo.clone(), engine);
    sm.verify = false;
    sm.sweep().unwrap();
    for &(sel, k) in ops {
        let down = inactive_isls(sm.topo());
        let recover = sel % 2 == 1 && !down.is_empty();
        let outcome = if recover {
            sm.recover_link(down[k % down.len()])
        } else {
            let up = active_isls(sm.topo());
            if up.is_empty() {
                break;
            }
            sm.fail_link(up[k % up.len()])
        };
        let db = sm.pathdb().unwrap();
        let rebuilt = PathDb::build(sm.topo(), sm.routes().unwrap(), db.epoch(), 1)
            .map_err(|e| TestCaseError::Fail(format!("{name}: rebuild failed: {e}")))?;
        prop_assert!(
            db.content_eq(&rebuilt),
            "{name}: store diverges from rebuild after {} (outcome {:?})",
            if recover { "recover" } else { "fail" },
            outcome.map(|r| r.incremental)
        );
        prop_assert_eq!(db.epoch(), sm.epoch(), "{} epoch stamp", name);
    }
    // Recover everything still down: the fabric must return to full health
    // and the store must still match a clean extraction.
    for l in inactive_isls(sm.topo()) {
        sm.recover_link(l)
            .map_err(|e| TestCaseError::Fail(format!("{name}: final recover failed: {e}")))?;
    }
    let db = sm.pathdb().unwrap();
    let rebuilt = PathDb::build(sm.topo(), sm.routes().unwrap(), db.epoch(), 1)
        .map_err(|e| TestCaseError::Fail(format!("{name}: healed rebuild failed: {e}")))?;
    prop_assert!(db.content_eq(&rebuilt), "{name}: healed store diverges");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Incremental patching equals a from-scratch resweep extraction on
    /// HyperX planes, for every engine and any ISL fault sequence.
    #[test]
    fn hyperx_incremental_matches_rebuild(
        t in 1u32..3,
        kills in proptest::collection::vec(0usize..10_000, 1..4),
    ) {
        let topo = HyperXConfig::new(vec![4, 4], t).build();
        for engine in hyperx_engines() {
            check_fault_sequence(&topo, engine, &kills)?;
        }
    }

    /// Same property on the staged-Clos Fat-Tree plane.
    #[test]
    fn fattree_incremental_matches_rebuild(
        kills in proptest::collection::vec(0usize..10_000, 1..4),
    ) {
        let topo = mini_fattree();
        for engine in fattree_engines() {
            check_fault_sequence(&topo, engine, &kills)?;
        }
    }

    /// Fail/recover churn equals a from-scratch resweep extraction on
    /// HyperX planes, for every engine and any interleaving.
    #[test]
    fn hyperx_churn_matches_rebuild(
        t in 1u32..3,
        ops in proptest::collection::vec((0u8..=255, 0usize..10_000), 2..6),
    ) {
        let topo = HyperXConfig::new(vec![4, 4], t).build();
        for engine in hyperx_engines() {
            check_churn_sequence(&topo, engine, &ops)?;
        }
    }

    /// Same churn property on the staged-Clos Fat-Tree plane.
    #[test]
    fn fattree_churn_matches_rebuild(
        ops in proptest::collection::vec((0u8..=255, 0usize..10_000), 2..6),
    ) {
        let topo = mini_fattree();
        for engine in fattree_engines() {
            check_churn_sequence(&topo, engine, &ops)?;
        }
    }

    /// The chunked `std::thread::scope` build is byte-identical to the
    /// sequential build — thread interleaving must never leak into results.
    #[test]
    fn parallel_build_is_deterministic(
        t in 1u32..3,
        threads in 2usize..9,
    ) {
        let topo = HyperXConfig::new(vec![4, 4], t).build();
        for engine in hyperx_engines() {
            let routes = engine.route(&topo).unwrap();
            let seq = PathDb::build(&topo, &routes, 5, 1).unwrap();
            let par = PathDb::build(&topo, &routes, 5, threads).unwrap();
            // Full structural equality, epoch stamp included.
            prop_assert_eq!(&seq, &par, "{} threads={}", engine.name(), threads);
        }
        let ft = mini_fattree();
        let routes = Ftree.route(&ft).unwrap();
        let seq = PathDb::build(&ft, &routes, 5, 1).unwrap();
        let par = PathDb::build(&ft, &routes, 5, threads).unwrap();
        prop_assert_eq!(&seq, &par, "ftree threads={}", threads);
    }
}

/// Deeper sequential fault drill on one engine: keep killing cables until
/// the fabric disconnects, checking equivalence at every step.
#[test]
fn fault_drill_until_disconnection() {
    let topo = HyperXConfig::new(vec![3, 3], 1).build();
    let mut sm = SubnetManager::new(topo, Box::new(Sssp::default()));
    sm.verify = false;
    sm.sweep().unwrap();
    let mut killed = 0;
    loop {
        let candidates = active_isls(sm.topo());
        let Some(&victim) = candidates.first() else {
            break;
        };
        let ok = sm.fail_link(victim).is_ok();
        let db = sm.pathdb().unwrap();
        let rebuilt = PathDb::build(sm.topo(), sm.routes().unwrap(), db.epoch(), 1).unwrap();
        assert!(db.content_eq(&rebuilt), "diverged after {killed} kills");
        if !ok {
            // Disconnection detected and rolled back; the drill is over.
            assert!(sm.topo().is_active(victim));
            break;
        }
        killed += 1;
        assert!(killed < 1000, "drill failed to terminate");
    }
    assert!(killed >= 1, "drill must kill at least one cable");
}
