//! Structured event tracer emitting Chrome trace-event JSON.
//!
//! The output object (`{"traceEvents":[...],"displayTimeUnit":"ms"}`) loads
//! directly into Perfetto (ui.perfetto.dev) or `chrome://tracing`. Tracks
//! map pid/tid to domain concepts: for DES traces pid is the plane and tid
//! the MPI rank, with timestamps in *simulated* microseconds; wall-clock
//! tracks (routing sweeps, experiment reps) use microseconds since the
//! tracer was created.

use crate::json::Json;
use parking_lot::Mutex;
use std::time::Instant;

/// One Chrome trace event. `ts`/`dur` are microseconds.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name shown on the track.
    pub name: String,
    /// Category tag (filterable in the trace viewer).
    pub cat: &'static str,
    /// Phase: "X" complete, "i" instant, "M" metadata.
    pub ph: &'static str,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Span duration in microseconds (`None` for instants/metadata).
    pub dur: Option<f64>,
    /// Process id — the track group (plane for DES traces).
    pub pid: u32,
    /// Thread id — the track (MPI rank for DES traces).
    pub tid: u32,
    /// Extra key/value payload rendered by the viewer.
    pub args: Vec<(String, Json)>,
}

impl TraceEvent {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("name", Json::str(self.name.clone())),
            ("cat", Json::str(self.cat)),
            ("ph", Json::str(self.ph)),
            ("ts", Json::from(self.ts)),
            ("pid", Json::from(self.pid as u64)),
            ("tid", Json::from(self.tid as u64)),
        ];
        if let Some(d) = self.dur {
            fields.push(("dur", Json::from(d)));
        }
        if self.ph == "i" {
            // Instant scope: thread-local.
            fields.push(("s", Json::str("t")));
        }
        if !self.args.is_empty() {
            fields.push(("args", Json::Obj(self.args.iter().cloned().collect())));
        }
        Json::obj(fields)
    }
}

/// Collects trace events in memory; serialised once at export time.
pub struct Tracer {
    events: Mutex<Vec<TraceEvent>>,
    /// Already-named tracks: (kind, pid, tid), so repeated `name_process`
    /// / `name_thread` calls (e.g. one per simulator run) emit one
    /// metadata record.
    named: Mutex<std::collections::BTreeSet<(&'static str, u32, u32)>>,
    epoch: Instant,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer {
            events: Mutex::new(Vec::new()),
            named: Mutex::new(std::collections::BTreeSet::new()),
            epoch: Instant::now(),
        }
    }
}

impl Tracer {
    /// Creates an empty tracer; wall-clock timestamps are relative to now.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Microseconds of wall time since this tracer was created.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Records a complete ("X") span on track `(pid, tid)`.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        pid: u32,
        tid: u32,
        name: impl Into<String>,
        cat: &'static str,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Json)>,
    ) {
        self.events.lock().push(TraceEvent {
            name: name.into(),
            cat,
            ph: "X",
            ts: ts_us,
            dur: Some(dur_us.max(0.0)),
            pid,
            tid,
            args,
        });
    }

    /// Records an instant ("i") event on track `(pid, tid)`.
    pub fn instant(
        &self,
        pid: u32,
        tid: u32,
        name: impl Into<String>,
        cat: &'static str,
        ts_us: f64,
        args: Vec<(String, Json)>,
    ) {
        self.events.lock().push(TraceEvent {
            name: name.into(),
            cat,
            ph: "i",
            ts: ts_us,
            dur: None,
            pid,
            tid,
            args,
        });
    }

    /// Names the process track `pid` (Perfetto group header).
    pub fn name_process(&self, pid: u32, name: impl Into<String>) {
        self.metadata("process_name", pid, 0, name.into());
    }

    /// Names thread track `(pid, tid)` (Perfetto row label).
    pub fn name_thread(&self, pid: u32, tid: u32, name: impl Into<String>) {
        self.metadata("thread_name", pid, tid, name.into());
    }

    fn metadata(&self, kind: &'static str, pid: u32, tid: u32, name: String) {
        if !self.named.lock().insert((kind, pid, tid)) {
            return;
        }
        self.events.lock().push(TraceEvent {
            name: kind.to_string(),
            cat: "__metadata",
            ph: "M",
            ts: 0.0,
            dur: None,
            pid,
            tid,
            args: vec![("name".to_string(), Json::str(name))],
        });
    }

    /// Number of events recorded so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialises to a Chrome trace JSON object string. Metadata events are
    /// emitted first so viewers label tracks before content arrives;
    /// otherwise insertion order is preserved (deterministic for
    /// single-threaded producers).
    pub fn to_chrome_json(&self) -> String {
        let ev = self.events.lock();
        let mut arr: Vec<Json> = Vec::with_capacity(ev.len());
        for e in ev.iter().filter(|e| e.ph == "M") {
            arr.push(e.to_json());
        }
        for e in ev.iter().filter(|e| e.ph != "M") {
            arr.push(e.to_json());
        }
        Json::obj([
            ("displayTimeUnit", Json::str("ms")),
            ("traceEvents", Json::Arr(arr)),
        ])
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn chrome_json_is_well_formed() {
        let t = Tracer::new();
        t.name_process(0, "plane 0");
        t.name_thread(0, 3, "rank 3");
        t.span(
            0,
            3,
            "compute",
            "des",
            10.0,
            5.5,
            vec![("bytes".to_string(), Json::from(4096u64))],
        );
        t.instant(0, 3, "recv", "des", 20.0, vec![]);
        let doc = parse(&t.to_chrome_json()).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 4);
        // Metadata first.
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("M"));
        let span = &evs[2];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("ts").unwrap().as_num(), Some(10.0));
        assert_eq!(span.get("dur").unwrap().as_num(), Some(5.5));
        assert_eq!(span.get("pid").unwrap().as_num(), Some(0.0));
        assert_eq!(span.get("tid").unwrap().as_num(), Some(3.0));
        assert_eq!(
            span.get("args").unwrap().get("bytes").unwrap().as_num(),
            Some(4096.0)
        );
        let inst = &evs[3];
        assert_eq!(inst.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(inst.get("s").unwrap().as_str(), Some("t"));
    }

    #[test]
    fn track_names_are_deduplicated() {
        let t = Tracer::new();
        t.name_process(1, "opensm");
        t.name_process(1, "opensm");
        t.name_thread(1, 2, "rank 2");
        t.name_thread(1, 2, "rank 2");
        t.name_thread(1, 3, "rank 3");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn negative_duration_clamps_to_zero() {
        let t = Tracer::new();
        t.span(0, 0, "x", "c", 1.0, -2.0, vec![]);
        let doc = parse(&t.to_chrome_json()).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs[0].get("dur").unwrap().as_num(), Some(0.0));
    }

    #[test]
    fn empty_tracer_serialises() {
        let t = Tracer::new();
        assert!(t.is_empty());
        let doc = parse(&t.to_chrome_json()).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
