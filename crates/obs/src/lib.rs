//! hxobs: observability layer for the t2hx HyperX/Fat-Tree study.
//!
//! Two halves, both thread-safe and allocation-light:
//!
//! * a **metrics registry** ([`metrics::Registry`]) of named counters,
//!   gauges and log-bucketed histograms, exported as JSONL;
//! * a **structured event tracer** ([`trace::Tracer`]) emitting spans and
//!   instants in Chrome trace-event JSON, loadable in Perfetto, with
//!   pid/tid mapped to plane/rank for DES traces.
//!
//! Three further subsystems ride the same gate:
//!
//! * **causal spans** ([`span::Span`]) — explicitly-threaded hierarchical
//!   span contexts with parent/child links and path-store epoch
//!   provenance, rendered into the same Perfetto trace;
//! * a **crash flight recorder** ([`flight`]) — a fixed-capacity lock-free
//!   ring of the last N span/metric events, dumped to
//!   `<out_dir>/flightdump.json` from a panic hook or on demand;
//! * **tail-latency sketches** ([`sketch`]) — mergeable log₂-bucket
//!   quantile sketches (p50/p95/p99/p999) keyed per `(metric, epoch)`.
//!
//! Instrumented code pays for what it uses: the global sink defaults to
//! off and every call site is gated on [`enabled`], a single relaxed
//! atomic load. Enable by calling [`init_from_env`] (honours `T2HX_OBS=1`)
//! or [`install`]; drain with [`finalize`] which writes
//! `<out_dir>/<name>.metrics.jsonl` and `<out_dir>/<name>.trace.json`
//! (see [`out_dir`]).

#![deny(missing_docs)]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod sketch;
pub mod span;
pub mod stats;
pub mod trace;

use parking_lot::RwLock;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use sketch::{Sketch, SketchRegistry, NO_PLANE};
pub use span::{Span, SpanCtx};
pub use stats::Summary;
pub use trace::{TraceEvent, Tracer};

/// Trace process-id (track group) conventions. DES simulators use the
/// plane index directly (0, 1, …); wall-clock subsystems get ids far above
/// any plausible plane count.
pub mod track {
    /// The subnet manager's wall-clock track.
    pub const OPENSM: u32 = 1000;
    /// The experiment runner's wall-clock track.
    pub const RUNNER: u32 = 1001;
    /// The MPI schedule-compilation track.
    pub const MPI: u32 = 1002;
    /// The resident `hxd` query service's wall-clock track; reader
    /// threads use their reader index as the tid within it.
    pub const HXD: u32 = 1003;
    /// The capacity allocator's wall-clock track; `capacity_scale` runs
    /// use the placement-policy index as the tid within it.
    pub const CAP: u32 = 1004;
}

/// Sink for metric updates and trace events. The default methods all
/// no-op, so `struct Noop; impl Recorder for Noop {}` is the zero-cost
/// disabled sink; [`ObsRecorder`] is the real one.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to counter `name`.
    fn counter_add(&self, _name: &str, _delta: u64) {}
    /// Sets gauge `name`.
    fn gauge_set(&self, _name: &str, _value: f64) {}
    /// Records one histogram sample under `name`.
    fn histogram_record(&self, _name: &str, _value: f64) {}
    /// Records a complete span on track `(pid, tid)`; times in µs.
    #[allow(clippy::too_many_arguments)]
    fn span(
        &self,
        _pid: u32,
        _tid: u32,
        _name: &str,
        _cat: &'static str,
        _ts_us: f64,
        _dur_us: f64,
        _args: Vec<(String, Json)>,
    ) {
    }
    /// Records an instant event on track `(pid, tid)`.
    fn instant(
        &self,
        _pid: u32,
        _tid: u32,
        _name: &str,
        _cat: &'static str,
        _ts_us: f64,
        _args: Vec<(String, Json)>,
    ) {
    }
    /// Records one tail-latency sample under `name` for path-store `epoch`.
    fn sketch_record(&self, _name: &str, _epoch: u64, _value: f64) {}
    /// Records one plane-scoped tail-latency sample (multi-rail fabrics).
    fn sketch_record_plane(&self, _name: &str, _epoch: u64, _plane: u32, _value: f64) {}
}

/// The do-nothing sink; what disabled call sites conceptually talk to.
pub struct Noop;

impl Recorder for Noop {}

/// Live sink: a metrics [`Registry`], a Chrome-trace [`Tracer`] and a
/// per-epoch tail-latency [`SketchRegistry`].
#[derive(Default)]
pub struct ObsRecorder {
    /// The metrics half: named counters, gauges and histograms.
    pub registry: Registry,
    /// The tracing half: Chrome trace-event spans and instants.
    pub tracer: Tracer,
    /// The tail half: per-`(name, epoch)` quantile sketches.
    pub sketches: SketchRegistry,
}

impl ObsRecorder {
    /// Creates an empty recorder.
    pub fn new() -> ObsRecorder {
        ObsRecorder::default()
    }

    /// Microseconds of wall time since this recorder was created.
    pub fn now_us(&self) -> f64 {
        self.tracer.now_us()
    }

    /// Writes `<name>.metrics.jsonl` and `<name>.trace.json` under `dir`
    /// (created if absent). Sketch lines (`{"type":"sketch",...}`) are
    /// appended to the metrics JSONL — one object per line either way.
    /// Returns the two paths.
    pub fn write_files(&self, dir: &Path, name: &str) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let metrics_path = dir.join(format!("{name}.metrics.jsonl"));
        let trace_path = dir.join(format!("{name}.trace.json"));
        let mut jsonl = self.registry.to_jsonl();
        jsonl.push_str(&self.sketches.to_jsonl());
        std::fs::write(&metrics_path, jsonl)?;
        std::fs::write(&trace_path, self.tracer.to_chrome_json())?;
        Ok((metrics_path, trace_path))
    }
}

impl Recorder for ObsRecorder {
    fn counter_add(&self, name: &str, delta: u64) {
        self.registry.counter(name).add(delta);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.registry.gauge(name).set(value);
    }

    fn histogram_record(&self, name: &str, value: f64) {
        self.registry.histogram(name).record(value);
    }

    fn span(
        &self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &'static str,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Json)>,
    ) {
        self.tracer.span(pid, tid, name, cat, ts_us, dur_us, args);
    }

    fn instant(
        &self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &'static str,
        ts_us: f64,
        args: Vec<(String, Json)>,
    ) {
        self.tracer.instant(pid, tid, name, cat, ts_us, args);
    }

    fn sketch_record(&self, name: &str, epoch: u64, value: f64) {
        self.sketches.record(name, epoch, value);
    }

    fn sketch_record_plane(&self, name: &str, epoch: u64, plane: u32, value: f64) {
        self.sketches.record_plane(name, epoch, plane, value);
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<ObsRecorder>>> = RwLock::new(None);

/// True when a sink is installed. One relaxed atomic load — the gate every
/// instrumentation site checks first, so disabled builds pay ~nothing.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs (or replaces) the global sink. Tests may swap sinks freely;
/// production installs once at process start.
pub fn install(r: Arc<ObsRecorder>) {
    *SINK.write() = Some(r);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the global sink, returning it (if any) so callers can still
/// export what was collected.
pub fn uninstall() -> Option<Arc<ObsRecorder>> {
    ENABLED.store(false, Ordering::Release);
    SINK.write().take()
}

/// The current sink, or `None` when observability is off. Callers on hot
/// paths should grab this once per run/solve, not per event.
pub fn sink() -> Option<Arc<ObsRecorder>> {
    if !enabled() {
        return None;
    }
    SINK.read().clone()
}

/// True when the `T2HX_OBS` environment variable requests observability
/// (set and not `"0"`).
pub fn env_requested() -> bool {
    std::env::var("T2HX_OBS").map(|v| v != "0").unwrap_or(false)
}

/// Installs a fresh [`ObsRecorder`] iff `T2HX_OBS=1` (any value but `"0"`),
/// and arms the [`flight`] recorder alongside it (opt out with
/// `T2HX_OBS_FLIGHT=0`). Returns whether observability is now on. Harness
/// binaries call this at startup and [`finalize`] before exit.
pub fn init_from_env() -> bool {
    if env_requested() {
        install(Arc::new(ObsRecorder::new()));
        flight::init_from_env();
        true
    } else {
        false
    }
}

/// Swaps in a fresh [`ObsRecorder`] (and a fresh flight ring of the same
/// capacity, when one was armed), returning the previous recorder so its
/// contents can still be exported. Use between logical phases sharing one
/// process — e.g. consecutive harness scopes — so counters, traces,
/// sketches and the flight ring never bleed across exports. `None` (and
/// nothing installed) when observability was off.
pub fn reset() -> Option<Arc<ObsRecorder>> {
    if !enabled() {
        return None;
    }
    let prev = uninstall();
    install(Arc::new(ObsRecorder::new()));
    if let Some(ring) = flight::uninstall() {
        flight::install(Arc::new(flight::FlightRecorder::new(ring.capacity())));
    }
    prev
}

/// Output directory for observability artefacts, in precedence order:
/// `$T2HX_OBS_DIR`; else `$T2HX_RESULTS_DIR/obs`; else
/// `results/quick/obs` under `T2HX_QUICK` and `results/obs` otherwise —
/// mirroring where `run_all` puts harness outputs, so quick runs never
/// clobber full-mode obs artefacts.
pub fn out_dir() -> PathBuf {
    if let Ok(d) = std::env::var("T2HX_OBS_DIR") {
        if !d.is_empty() {
            return PathBuf::from(d);
        }
    }
    if let Ok(d) = std::env::var("T2HX_RESULTS_DIR") {
        if !d.is_empty() {
            return PathBuf::from(d).join("obs");
        }
    }
    let quick = std::env::var("T2HX_QUICK").is_ok_and(|v| v != "0");
    if quick {
        PathBuf::from("results/quick/obs")
    } else {
        PathBuf::from("results/obs")
    }
}

/// Uninstalls the global sink and writes `<name>.metrics.jsonl` +
/// `<name>.trace.json` under [`out_dir`]. When a flight ring is armed and
/// holds events, it is dumped to `flightdump.json` alongside them and
/// disarmed. No-op (returns `None`) when observability was never enabled.
pub fn finalize(name: &str) -> Option<(PathBuf, PathBuf)> {
    let rec = uninstall()?;
    if let Some(ring) = flight::uninstall() {
        if ring.recorded() > 0 {
            let path = flight::dump_path();
            if let Err(e) = flight::dump_ring_to(&ring, &path) {
                eprintln!("hxobs: failed to write flight dump: {e}");
            }
        }
    }
    match rec.write_files(&out_dir(), name) {
        Ok(paths) => Some(paths),
        Err(e) => {
            eprintln!("hxobs: failed to write observability files: {e}");
            None
        }
    }
}

// ---- convenience free functions: gated, safe to call unconditionally ----

/// Adds to a named counter if observability is on. Also lands in the
/// flight ring as a [`flight::Kind::Counter`] event when one is armed.
#[inline]
pub fn count(name: &str, delta: u64) {
    if enabled() {
        if let Some(s) = sink() {
            s.counter_add(name, delta);
            flight_metric(&s, flight::Kind::Counter, name, delta as f64);
        }
    }
}

/// Sets a named gauge if observability is on. Also lands in the flight
/// ring as a [`flight::Kind::Gauge`] event when one is armed.
#[inline]
pub fn gauge(name: &str, value: f64) {
    if enabled() {
        if let Some(s) = sink() {
            s.gauge_set(name, value);
            flight_metric(&s, flight::Kind::Gauge, name, value);
        }
    }
}

/// Shared flight-ring tail for the metric free functions.
#[inline]
fn flight_metric(s: &ObsRecorder, kind: flight::Kind, name: &str, value: f64) {
    if flight::active() {
        flight::record(&flight::FlightEvent {
            kind,
            pid: 0,
            tid: 0,
            ts_us: s.now_us(),
            span: 0,
            parent: 0,
            epoch: 0,
            value,
            name: name.to_string(),
        });
    }
}

/// Records a histogram sample if observability is on.
#[inline]
pub fn observe(name: &str, value: f64) {
    if enabled() {
        if let Some(s) = sink() {
            s.histogram_record(name, value);
        }
    }
}

/// Records a tail-latency sample under `name` for path-store `epoch` if
/// observability is on. Also lands in the flight ring as a
/// [`flight::Kind::Sample`] event, so a crash dump shows the most recent
/// latencies alongside the open spans.
#[inline]
pub fn sketch_record(name: &str, epoch: u64, value: f64) {
    if enabled() {
        if let Some(s) = sink() {
            s.sketch_record(name, epoch, value);
            flight::record(&flight::FlightEvent {
                kind: flight::Kind::Sample,
                pid: 0,
                tid: 0,
                ts_us: s.now_us(),
                span: 0,
                parent: 0,
                epoch,
                value,
                name: name.to_string(),
            });
        }
    }
}

/// Records a plane-scoped tail-latency sample under `name` for path-store
/// `epoch` on fabric plane `plane` if observability is on. The per-rail
/// sibling of [`sketch_record`]: sketch JSONL lines gain a `plane` field so
/// multi-rail tails stay separable. The flight-ring mirror reuses `tid` to
/// carry the plane id (flight events have no plane slot).
#[inline]
pub fn sketch_record_plane(name: &str, epoch: u64, plane: u32, value: f64) {
    if enabled() {
        if let Some(s) = sink() {
            s.sketch_record_plane(name, epoch, plane, value);
            flight::record(&flight::FlightEvent {
                kind: flight::Kind::Sample,
                pid: 0,
                tid: plane,
                ts_us: s.now_us(),
                span: 0,
                parent: 0,
                epoch,
                value,
                name: name.to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_accepts_everything() {
        let n = Noop;
        n.counter_add("x", 1);
        n.gauge_set("x", 1.0);
        n.histogram_record("x", 1.0);
        n.span(0, 0, "s", "c", 0.0, 1.0, vec![]);
        n.instant(0, 0, "i", "c", 0.0, vec![]);
    }

    #[test]
    fn obs_recorder_routes_to_registry_and_tracer() {
        let r = ObsRecorder::new();
        r.counter_add("c", 2);
        r.gauge_set("g", 3.5);
        r.histogram_record("h", 1.0);
        r.span(1, 2, "work", "test", 0.0, 10.0, vec![]);
        r.instant(1, 2, "tick", "test", 5.0, vec![]);
        assert_eq!(r.registry.counter("c").get(), 2);
        assert_eq!(r.registry.gauge("g").get(), 3.5);
        assert_eq!(r.registry.histogram("h").count(), 1);
        assert_eq!(r.tracer.len(), 2);
    }

    #[test]
    fn write_files_produces_parseable_artifacts() {
        let r = ObsRecorder::new();
        r.counter_add("events", 5);
        r.span(0, 0, "phase", "test", 0.0, 100.0, vec![]);
        let dir = std::env::temp_dir().join(format!("hxobs-test-{}", std::process::id()));
        let (m, t) = r.write_files(&dir, "unit").unwrap();
        let metrics = std::fs::read_to_string(&m).unwrap();
        for line in metrics.lines() {
            json::parse(line).unwrap();
        }
        let trace = std::fs::read_to_string(&t).unwrap();
        let doc = json::parse(&trace).unwrap();
        assert!(doc.get("traceEvents").unwrap().as_arr().unwrap().len() == 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Global-sink lifecycle test. Kept as ONE test (not several) because
    // the sink is process-global and cargo runs tests concurrently.
    #[test]
    fn global_install_sink_finalize_cycle() {
        let rec = Arc::new(ObsRecorder::new());
        install(rec.clone());
        assert!(enabled());
        count("global.counter", 7);
        observe("global.hist", 2.0);
        gauge("global.gauge", 9.0);
        assert_eq!(rec.registry.counter("global.counter").get(), 7);
        assert_eq!(rec.registry.histogram("global.hist").count(), 1);
        assert_eq!(rec.registry.gauge("global.gauge").get(), 9.0);
        let back = uninstall().unwrap();
        assert!(Arc::ptr_eq(&back, &rec));
        assert!(!enabled());
        assert!(sink().is_none());
        // Disabled convenience calls are silent no-ops.
        count("global.counter", 100);
        assert_eq!(rec.registry.counter("global.counter").get(), 7);
    }
}
