//! Crash flight recorder: a fixed-capacity lock-free ring buffer of the
//! last N observability events, dumped as JSON from a panic hook or on
//! demand.
//!
//! A failing harness, a wedged campaign or a crashed `hxd` service leaves
//! `flightdump.json` under [`crate::out_dir`] — the post-mortem that flat
//! log files cannot give: the spans that were *open* when the process
//! died, in causal order, with their epoch provenance.
//!
//! ## Concurrency design
//!
//! Events are fixed-size records of [`WORDS`] `u64` words. Writers claim a
//! slot with one `fetch_add` on the global cursor (wait-free), then
//! publish through a per-slot sequence word: CAS even→odd to begin, store
//! the words with relaxed atomics, release-store the claim's even sequence
//! to finish. Readers ([`FlightRecorder::snapshot`]) load the sequence
//! before and after copying the words and discard the slot when the two
//! disagree or are odd — the classic seqlock validation, made race-free in
//! the Rust memory model by keeping every word an `AtomicU64`. Writers
//! never block each other except on lap collisions (two claims `capacity`
//! apart landing on one slot mid-write), where the later claim spins for
//! the ~16-word copy.
//!
//! The ring is global and enabled together with the observability sink
//! (`T2HX_OBS=1`); `T2HX_OBS_FLIGHT=0` opts out, `T2HX_OBS_FLIGHT_CAP`
//! sizes it (default 4096 events, rounded up to a power of two).

use crate::json::Json;
use crate::out_dir;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Words per event record: 1 header + 6 fixed payload + 9 name words.
pub const WORDS: usize = 16;
/// Bytes of event name retained (longer names truncate).
pub const NAME_BYTES: usize = (WORDS - 7) * 8;

/// Default ring capacity (events) when `T2HX_OBS_FLIGHT_CAP` is unset.
pub const DEFAULT_CAP: usize = 4096;

/// What a flight event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// A span opened (it may never close — that is the point).
    SpanBegin = 0,
    /// A span closed; `value` is its duration in microseconds.
    SpanEnd = 1,
    /// A counter add; `value` is the delta.
    Counter = 2,
    /// A gauge set; `value` is the new value.
    Gauge = 3,
    /// A histogram/sketch sample; `value` is the sample.
    Sample = 4,
    /// A point event (instants, panics); `value` is unused.
    Instant = 5,
}

impl Kind {
    fn from_u8(v: u8) -> Option<Kind> {
        Some(match v {
            0 => Kind::SpanBegin,
            1 => Kind::SpanEnd,
            2 => Kind::Counter,
            3 => Kind::Gauge,
            4 => Kind::Sample,
            5 => Kind::Instant,
            _ => return None,
        })
    }

    fn label(self) -> &'static str {
        match self {
            Kind::SpanBegin => "span_begin",
            Kind::SpanEnd => "span_end",
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Sample => "sample",
            Kind::Instant => "instant",
        }
    }
}

/// One decoded flight event.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// What happened.
    pub kind: Kind,
    /// Track group (plane / subsystem id).
    pub pid: u32,
    /// Track (rank) within the group.
    pub tid: u32,
    /// Wall-clock microseconds since the obs sink was installed.
    pub ts_us: f64,
    /// Span id for span events, 0 otherwise.
    pub span: u64,
    /// Parent span id, 0 when none.
    pub parent: u64,
    /// Path-store epoch provenance, 0 when not applicable.
    pub epoch: u64,
    /// Kind-dependent payload (duration, delta, sample, gauge value).
    pub value: f64,
    /// Event name, truncated to [`NAME_BYTES`].
    pub name: String,
}

impl FlightEvent {
    fn encode(&self) -> [u64; WORDS] {
        let mut w = [0u64; WORDS];
        let name = self.name.as_bytes();
        let nlen = name.len().min(NAME_BYTES);
        w[0] = (self.kind as u64) | ((nlen as u64) << 8);
        w[1] = (self.pid as u64) | ((self.tid as u64) << 32);
        w[2] = self.ts_us.to_bits();
        w[3] = self.span;
        w[4] = self.parent;
        w[5] = self.epoch;
        w[6] = self.value.to_bits();
        for (i, &b) in name[..nlen].iter().enumerate() {
            w[7 + i / 8] |= (b as u64) << ((i % 8) * 8);
        }
        w
    }

    fn decode(w: &[u64; WORDS]) -> Option<FlightEvent> {
        let kind = Kind::from_u8((w[0] & 0xff) as u8)?;
        let nlen = ((w[0] >> 8) & 0xff) as usize;
        if nlen > NAME_BYTES {
            return None;
        }
        let mut bytes = Vec::with_capacity(nlen);
        for i in 0..nlen {
            bytes.push(((w[7 + i / 8] >> ((i % 8) * 8)) & 0xff) as u8);
        }
        Some(FlightEvent {
            kind,
            pid: (w[1] & 0xffff_ffff) as u32,
            tid: (w[1] >> 32) as u32,
            ts_us: f64::from_bits(w[2]),
            span: w[3],
            parent: w[4],
            epoch: w[5],
            value: f64::from_bits(w[6]),
            name: String::from_utf8_lossy(&bytes).into_owned(),
        })
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kind", Json::str(self.kind.label())),
            ("name", Json::str(self.name.clone())),
            ("pid", Json::from(self.pid as u64)),
            ("tid", Json::from(self.tid as u64)),
            ("ts_us", Json::from(self.ts_us)),
        ];
        if self.span != 0 {
            fields.push(("span", Json::from(self.span)));
        }
        if self.parent != 0 {
            fields.push(("parent", Json::from(self.parent)));
        }
        if self.epoch != 0 {
            fields.push(("epoch", Json::from(self.epoch)));
        }
        if self.kind != Kind::Instant && self.kind != Kind::SpanBegin {
            fields.push(("value", Json::from(self.value)));
        }
        Json::obj(fields)
    }
}

/// Sequence states: 0 = never written; odd = write in progress; even
/// `2t + 2` = claim `t` published.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The fixed-capacity ring. See the module docs for the seqlock protocol.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    mask: u64,
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// A ring holding the last `capacity` events (rounded up to a power of
    /// two, clamped to `[16, 2^20]`).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.clamp(16, 1 << 20).next_power_of_two();
        FlightRecorder {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: cap as u64 - 1,
            cursor: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (recorded − capacity have been dropped,
    /// when positive).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records one event, overwriting the oldest when the ring is full.
    pub fn record(&self, ev: &FlightEvent) {
        let t = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(t & self.mask) as usize];
        let words = ev.encode();
        // Claim: move seq from any even/zero state to odd. Lap collisions
        // (a writer `capacity` claims ahead on the same slot) spin here
        // for the duration of a 16-word copy.
        let mut cur = slot.seq.load(Ordering::Relaxed);
        loop {
            if cur & 1 == 1 {
                std::hint::spin_loop();
                cur = slot.seq.load(Ordering::Relaxed);
                continue;
            }
            match slot
                .seq
                .compare_exchange_weak(cur, cur | 1, Ordering::Acquire, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        for (cell, &w) in slot.words.iter().zip(words.iter()) {
            cell.store(w, Ordering::Relaxed);
        }
        slot.seq.store(2 * t + 2, Ordering::Release);
    }

    /// A consistent copy of the ring's current contents in causal (claim)
    /// order, oldest first. Slots mid-write are skipped, so a snapshot
    /// taken while writers are live may be one event short per racing
    /// writer — acceptable for a post-mortem artefact.
    pub fn snapshot(&self) -> Vec<(u64, FlightEvent)> {
        let mut out: Vec<(u64, FlightEvent)> = Vec::new();
        for slot in self.slots.iter() {
            for _attempt in 0..4 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 {
                    break; // never written
                }
                if s1 & 1 == 1 {
                    std::hint::spin_loop();
                    continue; // write in progress; retry
                }
                let mut words = [0u64; WORDS];
                for (w, cell) in words.iter_mut().zip(slot.words.iter()) {
                    *w = cell.load(Ordering::Relaxed);
                }
                if slot.seq.load(Ordering::Acquire) != s1 {
                    continue; // torn by a lap collision; retry
                }
                let turn = (s1 - 2) / 2;
                if let Some(ev) = FlightEvent::decode(&words) {
                    out.push((turn, ev));
                }
                break;
            }
        }
        out.sort_by_key(|&(turn, _)| turn);
        out
    }

    /// Serializes the ring to the flight-dump JSON document.
    pub fn to_json(&self) -> Json {
        let recorded = self.recorded();
        let events = self.snapshot();
        let dropped = recorded.saturating_sub(self.capacity() as u64);
        Json::obj([
            ("capacity", Json::from(self.capacity() as u64)),
            ("recorded", Json::from(recorded)),
            ("dropped", Json::from(dropped)),
            (
                "events",
                Json::Arr(events.iter().map(|(_, e)| e.to_json()).collect()),
            ),
        ])
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static RING: parking_lot::RwLock<Option<Arc<FlightRecorder>>> = parking_lot::RwLock::new(None);
static PANIC_HOOK: OnceLock<()> = OnceLock::new();

/// True when a flight ring is installed: the single relaxed load gating
/// every record site.
#[inline(always)]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The installed ring, if any.
pub fn ring() -> Option<Arc<FlightRecorder>> {
    if !active() {
        return None;
    }
    RING.read().clone()
}

/// Installs (or replaces) the global ring and arms the panic hook.
pub fn install(r: Arc<FlightRecorder>) {
    *RING.write() = Some(r);
    ACTIVE.store(true, Ordering::Release);
    install_panic_hook();
}

/// Removes the global ring, returning it so callers can still dump it.
pub fn uninstall() -> Option<Arc<FlightRecorder>> {
    ACTIVE.store(false, Ordering::Release);
    RING.write().take()
}

/// Requested ring capacity: `T2HX_OBS_FLIGHT_CAP` or [`DEFAULT_CAP`].
pub fn env_capacity() -> usize {
    std::env::var("T2HX_OBS_FLIGHT_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CAP)
}

/// Installs a fresh ring unless `T2HX_OBS_FLIGHT=0` opts out. Called by
/// [`crate::init_from_env`] alongside the sink install; returns whether the
/// recorder is now armed.
pub fn init_from_env() -> bool {
    let off = std::env::var("T2HX_OBS_FLIGHT")
        .map(|v| v == "0")
        .unwrap_or(false);
    if off {
        uninstall();
        return false;
    }
    install(Arc::new(FlightRecorder::new(env_capacity())));
    true
}

/// Records one event if a ring is armed.
#[inline]
pub fn record(ev: &FlightEvent) {
    if active() {
        if let Some(r) = ring() {
            r.record(ev);
        }
    }
}

/// Where on-demand and panic dumps land: `<out_dir>/flightdump.json`.
pub fn dump_path() -> PathBuf {
    out_dir().join("flightdump.json")
}

/// Dumps a specific ring to `path` (parent directories created) — useful
/// for a ring already detached via [`uninstall`].
pub fn dump_ring_to(ring: &FlightRecorder, path: &Path) -> std::io::Result<PathBuf> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, ring.to_json().to_string())?;
    Ok(path.to_path_buf())
}

/// Dumps the armed ring to `path`. `None` when no ring is armed.
pub fn dump_to(path: &Path) -> Option<std::io::Result<PathBuf>> {
    let r = ring()?;
    Some(dump_ring_to(&r, path))
}

/// On-demand dump to the default [`dump_path`].
pub fn dump() -> Option<std::io::Result<PathBuf>> {
    dump_to(&dump_path())
}

/// Arms the process panic hook (once): on panic, the hook records the
/// panic itself as an [`Kind::Instant`] event and writes the flight dump
/// to [`dump_path`] before delegating to the previous hook. The dump path
/// is resolved at panic time, so late `T2HX_OBS_DIR`/`T2HX_RESULTS_DIR`
/// changes are honoured.
pub fn install_panic_hook() {
    PANIC_HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(r) = ring() {
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic".to_string());
                let loc = info
                    .location()
                    .map(|l| format!("{}:{}", l.file(), l.line()))
                    .unwrap_or_default();
                r.record(&FlightEvent {
                    kind: Kind::Instant,
                    pid: 0,
                    tid: 0,
                    ts_us: crate::sink().map(|s| s.now_us()).unwrap_or(0.0),
                    span: 0,
                    parent: 0,
                    epoch: 0,
                    value: 0.0,
                    name: format!("panic: {msg} @ {loc}"),
                });
                let path = dump_path();
                match dump_to(&path) {
                    Some(Ok(p)) => eprintln!("hxobs: flight dump -> {}", p.display()),
                    Some(Err(e)) => eprintln!("hxobs: flight dump failed: {e}"),
                    None => {}
                }
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, kind: Kind, span: u64) -> FlightEvent {
        FlightEvent {
            kind,
            pid: 1,
            tid: 2,
            ts_us: 42.5,
            span,
            parent: span.saturating_sub(1),
            epoch: 7,
            value: 3.25,
            name: name.to_string(),
        }
    }

    #[test]
    fn roundtrip_encode_decode() {
        let e = ev("fail_link", Kind::SpanBegin, 9);
        let d = FlightEvent::decode(&e.encode()).unwrap();
        assert_eq!(d.kind, Kind::SpanBegin);
        assert_eq!(d.pid, 1);
        assert_eq!(d.tid, 2);
        assert_eq!(d.ts_us, 42.5);
        assert_eq!(d.span, 9);
        assert_eq!(d.parent, 8);
        assert_eq!(d.epoch, 7);
        assert_eq!(d.value, 3.25);
        assert_eq!(d.name, "fail_link");
    }

    #[test]
    fn long_names_truncate_at_name_bytes() {
        let long = "x".repeat(NAME_BYTES + 50);
        let d = FlightEvent::decode(&ev(&long, Kind::Counter, 0).encode()).unwrap();
        assert_eq!(d.name.len(), NAME_BYTES);
    }

    #[test]
    fn ring_keeps_last_capacity_events_in_order() {
        let r = FlightRecorder::new(16);
        assert_eq!(r.capacity(), 16);
        for i in 0..40u64 {
            r.record(&ev(&format!("e{i}"), Kind::Sample, i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 16);
        // Oldest surviving claim is 40 - 16 = 24; order is causal.
        let turns: Vec<u64> = snap.iter().map(|&(t, _)| t).collect();
        assert_eq!(turns, (24..40).collect::<Vec<_>>());
        assert_eq!(snap[0].1.name, "e24");
        assert_eq!(snap[15].1.name, "e39");
        let j = r.to_json();
        assert_eq!(j.get("dropped").unwrap().as_num(), Some(24.0));
        assert_eq!(j.get("recorded").unwrap().as_num(), Some(40.0));
        assert_eq!(j.get("events").unwrap().as_arr().unwrap().len(), 16);
    }

    #[test]
    fn concurrent_writers_never_tear_records() {
        let r = std::sync::Arc::new(FlightRecorder::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    r.record(&ev(&format!("w{t}-{i}"), Kind::Counter, t * 10_000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.recorded(), 8000);
        let snap = r.snapshot();
        assert!(snap.len() <= 64);
        for (_, e) in &snap {
            // A torn record would mismatch name and span id.
            let (w, i) = e.name[1..].split_once('-').unwrap();
            let expect = w.parse::<u64>().unwrap() * 10_000 + i.parse::<u64>().unwrap();
            assert_eq!(e.span, expect, "torn record: {e:?}");
        }
    }
}
