//! Thread-safe, allocation-light metrics: named counters, gauges and
//! log-bucketed histograms.
//!
//! All instruments are lock-free atomics once created; the registry map
//! itself sits behind a `parking_lot::RwLock` taken only on first use of a
//! name (instrument handles are `Arc`s, so hot loops hold a handle and
//! never touch the map). Export is a JSONL snapshot, one metric per line.

use crate::json::Json;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log₂ buckets. Bucket `i` covers `[2^(i-OFFSET-1), 2^(i-OFFSET))`,
/// so the dynamic range spans ~1e-12 … ~1e16 — enough for seconds, bytes
/// and hop counts alike. Shared with [`crate::sketch`] so histogram and
/// sketch buckets line up.
pub(crate) const BUCKETS: usize = 96;
const OFFSET: i32 = 40;

/// Lock-free log-bucketed histogram over non-negative `f64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Sum of samples as f64 bits (CAS loop).
    sum: AtomicU64,
    /// Minimum sample as f64 bits.
    min: AtomicU64,
    /// Maximum sample as f64 bits.
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0.0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

pub(crate) fn bucket_of(v: f64) -> usize {
    if v <= 0.0 {
        return 0;
    }
    // ceil(log2(v)): smallest i with v <= 2^i.
    let l = v.log2().ceil() as i32;
    (l + OFFSET).clamp(0, BUCKETS as i32 - 1) as usize
}

/// Upper bound of bucket `i` (`2^(i-OFFSET)`).
pub(crate) fn bucket_bound(i: usize) -> f64 {
    ((i as i32 - OFFSET) as f64).exp2()
}

fn atomic_f64_update(cell: &AtomicU64, value: f64, better: impl Fn(f64, f64) -> bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let c = f64::from_bits(cur);
        if !better(value, c) {
            return;
        }
        match cell.compare_exchange_weak(cur, value.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

impl Histogram {
    /// Records one sample (negative samples clamp into the lowest bucket).
    pub fn record(&self, v: f64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Relaxed f64 accumulate: fine for metrics (no cross-field torn
        // reads matter; each field is itself atomic).
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        atomic_f64_update(&self.min, v, |new, cur| new < cur);
        atomic_f64_update(&self.max, v, |new, cur| new > cur);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }

    /// Mean sample, 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Non-empty `(upper_bound, count)` buckets in ascending order.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_bound(i), n))
            })
            .collect()
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named-instrument registry. Cheap to clone handles out of; never hands
/// the same name to two different instrument kinds (first kind wins, a
/// mismatched later request gets a detached instrument rather than a
/// panic — observability must never take the simulation down).
#[derive(Default)]
pub struct Registry {
    map: RwLock<BTreeMap<String, Instrument>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Counter handle for `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Instrument::Counter(c)) = self.map.read().get(name) {
            return c.clone();
        }
        let mut w = self.map.write();
        match w
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::default())))
        {
            Instrument::Counter(c) => c.clone(),
            _ => Arc::new(Counter::default()),
        }
    }

    /// Gauge handle for `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Instrument::Gauge(g)) = self.map.read().get(name) {
            return g.clone();
        }
        let mut w = self.map.write();
        match w
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::default())))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => Arc::new(Gauge::default()),
        }
    }

    /// Histogram handle for `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(Instrument::Histogram(h)) = self.map.read().get(name) {
            return h.clone();
        }
        let mut w = self.map.write();
        match w
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::default())))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => Arc::new(Histogram::default()),
        }
    }

    /// Snapshot as JSONL: one `{"type":...,"name":...}` object per line,
    /// sorted by metric name (byte-stable across identical runs).
    pub fn to_jsonl(&self) -> String {
        let map = self.map.read();
        let mut out = String::new();
        for (name, inst) in map.iter() {
            let j = match inst {
                Instrument::Counter(c) => Json::obj([
                    ("type", Json::str("counter")),
                    ("name", Json::str(name.clone())),
                    ("value", Json::from(c.get())),
                ]),
                Instrument::Gauge(g) => Json::obj([
                    ("type", Json::str("gauge")),
                    ("name", Json::str(name.clone())),
                    ("value", Json::from(g.get())),
                ]),
                Instrument::Histogram(h) => {
                    let buckets = Json::Arr(
                        h.nonzero_buckets()
                            .into_iter()
                            .map(|(le, n)| {
                                Json::obj([("le", Json::from(le)), ("count", Json::from(n))])
                            })
                            .collect(),
                    );
                    let (min, max) = if h.count() == 0 {
                        (Json::Null, Json::Null)
                    } else {
                        (
                            Json::from(f64::from_bits(h.min.load(Ordering::Relaxed))),
                            Json::from(f64::from_bits(h.max.load(Ordering::Relaxed))),
                        )
                    };
                    Json::obj([
                        ("type", Json::str("histogram")),
                        ("name", Json::str(name.clone())),
                        ("count", Json::from(h.count())),
                        ("sum", Json::from(h.sum())),
                        ("min", min),
                        ("max", max),
                        ("buckets", buckets),
                    ])
                }
            };
            out.push_str(&j.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 4);
    }

    #[test]
    fn gauge_last_write_wins() {
        let r = Registry::new();
        r.gauge("g").set(1.5);
        r.gauge("g").set(-2.0);
        assert_eq!(r.gauge("g").get(), -2.0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::default();
        for v in [0.5, 1.0, 3.0, 1000.0, 0.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 1004.5).abs() < 1e-9);
        let b = h.nonzero_buckets();
        // Every recorded value is <= its bucket's upper bound.
        let total: u64 = b.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 5);
        assert!(b.windows(2).all(|w| w[0].0 < w[1].0));
        // 3.0 lands in the bucket bounded by 4.0.
        assert!(b.iter().any(|&(le, _)| (le - 4.0).abs() < 1e-12));
    }

    #[test]
    fn histogram_min_max_mean() {
        let h = Histogram::default();
        h.record(2.0);
        h.record(8.0);
        assert_eq!(h.mean(), 5.0);
        let r = Registry::new();
        r.histogram("h").record(7.0);
        let line = r.to_jsonl();
        let parsed = crate::json::parse(line.trim()).unwrap();
        assert_eq!(parsed.get("count").and_then(|j| j.as_num()), Some(1.0));
        assert_eq!(parsed.get("min").and_then(|j| j.as_num()), Some(7.0));
        assert_eq!(parsed.get("max").and_then(|j| j.as_num()), Some(7.0));
    }

    #[test]
    fn jsonl_snapshot_sorted_and_parseable() {
        let r = Registry::new();
        r.counter("z.last").add(1);
        r.gauge("a.first").set(0.25);
        r.histogram("m.mid").record(10.0);
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        let names: Vec<String> = lines
            .iter()
            .map(|l| {
                crate::json::parse(l)
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                let c = r.counter("shared");
                let h = r.histogram("hist");
                for i in 0..1000 {
                    c.inc();
                    h.record(i as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("shared").get(), 4000);
        assert_eq!(r.histogram("hist").count(), 4000);
    }
}
