//! Hierarchical, explicitly-threaded causal spans.
//!
//! A [`Span`] is a timed region with an identity: a process-unique id, an
//! optional parent id, and an optional path-store epoch. Parenthood is
//! threaded *explicitly* — a call site that wants its work attributed to a
//! caller takes a [`SpanCtx`] argument; there is no thread-local ambient
//! context, so causality in the trace is exactly the causality in the
//! code, including across worker threads.
//!
//! On close (explicit [`Span::end`] or drop) a span emits one Chrome
//! trace-event "X" record whose `args` carry `span`, `parent` and `epoch`,
//! so the existing Perfetto output gains a reconstructable causal tree:
//! `step → fail_link → pathdb_patch → repath → resolve`. Spans also feed
//! the [`crate::flight`] ring at *begin* and *end* — a crash dump shows
//! which spans were still open, which is precisely what a post-mortem
//! needs.
//!
//! Cost when disabled: [`Span::root`] is one relaxed atomic load and a
//! stack struct with no allocation, no clock read and no sink lookup;
//! every other method on a dead span is a branch. The `hxperf`
//! `obs_disabled` kernel pins this.

use crate::flight::{self, FlightEvent, Kind};
use crate::json::Json;
use crate::ObsRecorder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide span id source; 0 is reserved for "no span".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A span's identity, cheap to copy into callees: the explicit thread of
/// causality. `id == 0` means "no span" (disabled observability or no
/// parent), and every operation on such a context is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    /// Process-unique span id (0 = none).
    pub id: u64,
    /// Trace track group the span lives on.
    pub pid: u32,
    /// Trace track within the group.
    pub tid: u32,
}

impl SpanCtx {
    /// The absent context: pass where no parent exists (or observability
    /// is off). Children of `none()` become roots.
    pub const fn none() -> SpanCtx {
        SpanCtx {
            id: 0,
            pid: 0,
            tid: 0,
        }
    }

    /// True when this context names a live span.
    pub fn is_live(&self) -> bool {
        self.id != 0
    }
}

/// A live timed region. Close with [`Span::end`] (or let it drop — early
/// returns and unwinds still close the trace record; the flight ring keeps
/// the begin event either way).
pub struct Span {
    /// `None` when disabled — the whole span is then inert.
    sink: Option<Arc<ObsRecorder>>,
    ctx: SpanCtx,
    parent: u64,
    name: &'static str,
    cat: &'static str,
    start_us: f64,
    /// Manual-clock flag: when set, `end` uses `end_at`'s timestamp and
    /// drop closes with a zero-length span at `start_us`.
    manual: bool,
    epoch: u64,
    plane: Option<u32>,
    args: Vec<(String, Json)>,
}

impl Span {
    fn dead() -> Span {
        Span {
            sink: None,
            ctx: SpanCtx::none(),
            parent: 0,
            name: "",
            cat: "",
            start_us: 0.0,
            manual: false,
            epoch: 0,
            plane: None,
            args: Vec::new(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn live(
        sink: Arc<ObsRecorder>,
        pid: u32,
        tid: u32,
        parent: u64,
        name: &'static str,
        cat: &'static str,
        start_us: f64,
        manual: bool,
    ) -> Span {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        flight::record(&FlightEvent {
            kind: Kind::SpanBegin,
            pid,
            tid,
            ts_us: start_us,
            span: id,
            parent,
            epoch: 0,
            value: 0.0,
            name: name.to_string(),
        });
        Span {
            sink: Some(sink),
            ctx: SpanCtx { id, pid, tid },
            parent,
            name,
            cat,
            start_us,
            manual,
            epoch: 0,
            plane: None,
            args: Vec::new(),
        }
    }

    /// Opens a root span on track `(pid, tid)` at the current wall clock.
    /// Dead (free) when observability is off.
    pub fn root(pid: u32, tid: u32, name: &'static str, cat: &'static str) -> Span {
        if !crate::enabled() {
            return Span::dead();
        }
        let Some(sink) = crate::sink() else {
            return Span::dead();
        };
        let now = sink.now_us();
        Span::live(sink, pid, tid, 0, name, cat, now, false)
    }

    /// Opens a root span with an explicit (e.g. simulated-time) start
    /// timestamp; close it with [`Span::end_at`].
    pub fn root_at(pid: u32, tid: u32, name: &'static str, cat: &'static str, ts_us: f64) -> Span {
        if !crate::enabled() {
            return Span::dead();
        }
        let Some(sink) = crate::sink() else {
            return Span::dead();
        };
        Span::live(sink, pid, tid, 0, name, cat, ts_us, true)
    }

    /// Opens a span under `parent` — on the parent's track when the parent
    /// is live, on `(pid, tid)` otherwise. This is the cross-crate
    /// threading constructor: callees take a [`SpanCtx`] argument and call
    /// this, so the campaign's `step` and the router's `fail_link` join
    /// into one tree without any ambient state.
    pub fn under(
        parent: SpanCtx,
        pid: u32,
        tid: u32,
        name: &'static str,
        cat: &'static str,
    ) -> Span {
        if !crate::enabled() {
            return Span::dead();
        }
        let Some(sink) = crate::sink() else {
            return Span::dead();
        };
        let (pid, tid) = if parent.is_live() {
            (parent.pid, parent.tid)
        } else {
            (pid, tid)
        };
        let now = sink.now_us();
        Span::live(sink, pid, tid, parent.id, name, cat, now, false)
    }

    /// Opens a child of this span on the same track.
    pub fn child(&self, name: &'static str, cat: &'static str) -> Span {
        match &self.sink {
            None => Span::dead(),
            Some(sink) => {
                let now = sink.now_us();
                Span::live(
                    sink.clone(),
                    self.ctx.pid,
                    self.ctx.tid,
                    self.ctx.id,
                    name,
                    cat,
                    now,
                    false,
                )
            }
        }
    }

    /// This span's identity for threading into callees. [`SpanCtx::none`]
    /// when the span is dead.
    pub fn ctx(&self) -> SpanCtx {
        self.ctx
    }

    /// True when the span will emit (observability was on at open).
    pub fn is_live(&self) -> bool {
        self.sink.is_some()
    }

    /// Stamps the path-store epoch this span's work belongs to.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Stamps the fabric plane (NIC rail) this span's work belongs to.
    /// Plane-scoped code paths call this so Perfetto traces separate
    /// per-rail trees; unplaned spans carry no `plane` arg.
    pub fn set_plane(&mut self, plane: u32) {
        self.plane = Some(plane);
    }

    /// Attaches a key/value argument (dropped when dead).
    pub fn arg(&mut self, key: &str, value: Json) {
        if self.sink.is_some() {
            self.args.push((key.to_string(), value));
        }
    }

    fn emit(&mut self, end_us: f64) {
        let Some(sink) = self.sink.take() else { return };
        use crate::Recorder;
        let dur = (end_us - self.start_us).max(0.0);
        let mut args = std::mem::take(&mut self.args);
        args.push(("span".to_string(), Json::from(self.ctx.id)));
        if self.parent != 0 {
            args.push(("parent".to_string(), Json::from(self.parent)));
        }
        if self.epoch != 0 {
            args.push(("epoch".to_string(), Json::from(self.epoch)));
        }
        if let Some(plane) = self.plane {
            args.push(("plane".to_string(), Json::from(u64::from(plane))));
        }
        sink.span(
            self.ctx.pid,
            self.ctx.tid,
            self.name,
            self.cat,
            self.start_us,
            dur,
            args,
        );
        flight::record(&FlightEvent {
            kind: Kind::SpanEnd,
            pid: self.ctx.pid,
            tid: self.ctx.tid,
            ts_us: end_us,
            span: self.ctx.id,
            parent: self.parent,
            epoch: self.epoch,
            value: dur,
            name: self.name.to_string(),
        });
    }

    /// Closes the span at the current wall clock.
    pub fn end(mut self) {
        if let Some(sink) = &self.sink {
            let now = if self.manual {
                self.start_us
            } else {
                sink.now_us()
            };
            self.emit(now);
        }
    }

    /// Closes a manual-clock span at an explicit timestamp.
    pub fn end_at(mut self, ts_us: f64) {
        self.emit(ts_us);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.sink.is_some() {
            let now = if self.manual {
                self.start_us
            } else {
                self.sink
                    .as_ref()
                    .map(|s| s.now_us())
                    .unwrap_or(self.start_us)
            };
            self.emit(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_spans_are_inert() {
        // No global sink installed in this unit-test process section.
        let mut s = Span::dead();
        assert!(!s.is_live());
        assert!(!s.ctx().is_live());
        s.set_epoch(5);
        s.arg("k", Json::from(1u64));
        let c = s.child("x", "y");
        assert!(!c.is_live());
        c.end();
        s.end();
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let b = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        assert!(a > 0 && b > a);
    }
}
