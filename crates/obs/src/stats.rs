//! Robust summary statistics for benchmark samples.
//!
//! Wall-clock benchmark samples are contaminated by scheduler noise,
//! frequency scaling and allocator warm-up, so the trajectory pipeline
//! (`hxperf`) summarizes every kernel with *robust* location and spread
//! estimators instead of mean/stddev:
//!
//! * **median** — the location estimate; immune to a minority of outliers,
//! * **MAD** (median absolute deviation) — the spread estimate with a 50%
//!   breakdown point,
//! * a **bootstrap 95% confidence interval of the median** — percentile
//!   method over a fixed number of resamples, driven by a seeded SplitMix64
//!   generator so the same samples always produce the same interval.
//!
//! [`Summary`] round-trips through the crate's [`Json`] model byte-stably:
//! serializing, parsing and re-serializing yields identical bytes (object
//! keys are sorted and `f64` formatting is Rust's shortest round-trip
//! form), which is what lets `BENCH_*.json` files be diffed across PRs.

use crate::json::Json;

/// Number of bootstrap resamples behind [`Summary::of`]'s confidence
/// interval. Fixed (not configurable) so summaries are comparable across
/// runs and PRs.
pub const BOOTSTRAP_RESAMPLES: usize = 1000;

/// Fixed seed for the bootstrap resampler: the interval is a deterministic
/// function of the samples alone.
const BOOTSTRAP_SEED: u64 = 0x7258_1905_5c19_b00f;

/// Robust summary of a sample set: median/MAD plus a deterministic
/// bootstrap 95% confidence interval of the median.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples summarized.
    pub n: u64,
    /// Arithmetic mean (reported for context; gating uses the median).
    pub mean: f64,
    /// Sample median.
    pub median: f64,
    /// Median absolute deviation from the median (unscaled).
    pub mad: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Lower end of the bootstrap 95% CI of the median.
    pub ci_lo: f64,
    /// Upper end of the bootstrap 95% CI of the median.
    pub ci_hi: f64,
}

/// SplitMix64 step — the small, seedable generator backing the bootstrap
/// (hxobs deliberately has no RNG dependency).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Median of an already-sorted slice (mean of the middle pair when even).
fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

impl Summary {
    /// Summarizes `samples` (any order, at least one, all finite).
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set or non-finite values — a benchmark
    /// that produced either is broken and must not emit a trajectory
    /// point.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "Summary::of on empty sample set");
        assert!(
            samples.iter().all(|v| v.is_finite()),
            "Summary::of on non-finite samples"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let median = median_sorted(&sorted);
        let mut dev: Vec<f64> = sorted.iter().map(|v| (v - median).abs()).collect();
        dev.sort_by(f64::total_cmp);
        let mad = median_sorted(&dev);
        let mean = sorted.iter().sum::<f64>() / n as f64;

        // Percentile-bootstrap CI of the median, deterministic by seed.
        let mut state = BOOTSTRAP_SEED ^ (n as u64).wrapping_mul(0x9e37);
        let mut boot = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
        let mut resample = vec![0.0f64; n];
        for _ in 0..BOOTSTRAP_RESAMPLES {
            for r in resample.iter_mut() {
                *r = sorted[(splitmix64(&mut state) % n as u64) as usize];
            }
            resample.sort_by(f64::total_cmp);
            boot.push(median_sorted(&resample));
        }
        boot.sort_by(f64::total_cmp);
        let pick = |q: f64| boot[(q * (BOOTSTRAP_RESAMPLES - 1) as f64).round() as usize];
        Summary {
            n: n as u64,
            mean,
            median,
            mad,
            min: sorted[0],
            max: sorted[n - 1],
            ci_lo: pick(0.025),
            ci_hi: pick(0.975),
        }
    }

    /// Serializes to a [`Json`] object (sorted keys, byte-stable).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ci_hi", Json::from(self.ci_hi)),
            ("ci_lo", Json::from(self.ci_lo)),
            ("mad", Json::from(self.mad)),
            ("max", Json::from(self.max)),
            ("mean", Json::from(self.mean)),
            ("median", Json::from(self.median)),
            ("min", Json::from(self.min)),
            ("n", Json::from(self.n)),
        ])
    }

    /// Parses a summary back out of [`Summary::to_json`]'s shape. Returns
    /// `None` when any field is missing or non-numeric.
    pub fn from_json(j: &Json) -> Option<Summary> {
        let f = |k: &str| j.get(k).and_then(Json::as_num);
        Some(Summary {
            n: f("n")? as u64,
            mean: f("mean")?,
            median: f("median")?,
            mad: f("mad")?,
            min: f("min")?,
            max: f("max")?,
            ci_lo: f("ci_lo")?,
            ci_hi: f("ci_hi")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mad, 1.0); // |dev| = [2,1,0,1,97] -> median 1
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 22.0);
        // The outlier moves the mean but the CI brackets the median.
        assert!(s.ci_lo <= s.median && s.median <= s.ci_hi);
    }

    #[test]
    fn even_count_median() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn single_sample_degenerates() {
        let s = Summary::of(&[7.5]);
        assert_eq!((s.median, s.mad), (7.5, 0.0));
        assert_eq!((s.ci_lo, s.ci_hi), (7.5, 7.5));
    }

    #[test]
    fn deterministic_and_order_invariant() {
        let a = Summary::of(&[3.0, 1.0, 2.0, 9.0, 5.0, 4.0]);
        let b = Summary::of(&[9.0, 5.0, 4.0, 3.0, 1.0, 2.0]);
        assert_eq!(a, b);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn json_round_trip_byte_identical() {
        let s = Summary::of(&[0.125, 3.7, 2.0, 1e9, 0.333333]);
        let text = s.to_json().to_string();
        let back = Summary::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        Summary::of(&[]);
    }
}
