//! Mergeable log₂-bucket quantile sketches for tail-latency metrics.
//!
//! A [`Sketch`] is the quantile-answering sibling of
//! [`crate::metrics::Histogram`]: the same 96-bucket log₂ layout (bucket
//! `i` covers `(2^(i-41), 2^(i-40)]`), but single-writer plain counters,
//! a [`Sketch::quantile`] query and a cheap [`Sketch::merge`]. Because
//! every positive sample `v` lands in the bucket whose upper bound `b`
//! satisfies `v <= b < 2v`, a quantile estimate brackets the exact sample
//! quantile within a factor of two: `exact <= estimate < 2 * exact`. That
//! bound is pinned by the proptests in `tests/sketch.rs`.
//!
//! [`SketchRegistry`] keys sketches by `(name, epoch)` so per-epoch tail
//! distributions (flow completion, re-solve time, reroute latency) survive
//! into the metrics export: one `{"type":"sketch",...}` JSONL line per
//! epoch with p50/p95/p99/p999, plus cross-epoch merges on demand.

use crate::json::Json;
use crate::metrics::{bucket_bound, bucket_of, BUCKETS};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// The quantiles every sketch export reports, in order.
pub const REPORTED_QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999)];

/// A mergeable log₂-bucket quantile sketch over non-negative samples.
#[derive(Debug, Clone)]
pub struct Sketch {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Sketch {
    fn default() -> Sketch {
        Sketch {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Sketch {
    /// Creates an empty sketch.
    pub fn new() -> Sketch {
        Sketch::default()
    }

    /// Records one sample (negative samples clamp into the lowest bucket).
    pub fn record(&mut self, v: f64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Folds another sketch into this one: the result is bucket-identical
    /// to a sketch that recorded both sample streams.
    pub fn merge(&mut self, other: &Sketch) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Upper log₂-bucket bound of the sample at rank `ceil(q * count)`
    /// (clamped to `[1, count]`), i.e. an estimate `e` of the exact
    /// q-quantile `x` with `x <= e < 2x` for positive samples. `None` when
    /// the sketch is empty. The estimate is additionally clamped into
    /// `[min, max]`, which only tightens the bracket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_bound(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The standard tail report: `[p50, p95, p99, p999]`.
    pub fn tail(&self) -> Option<[f64; 4]> {
        let q = |p| self.quantile(p);
        Some([q(0.50)?, q(0.95)?, q(0.99)?, q(0.999)?])
    }

    /// Serializes as the `{"type":"sketch"}` JSONL payload body (name and
    /// epoch are added by the registry).
    pub fn to_json_fields(&self) -> Vec<(&'static str, Json)> {
        let mut fields = vec![
            ("type", Json::str("sketch")),
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
        ];
        if self.count > 0 {
            fields.push(("min", Json::from(self.min)));
            fields.push(("max", Json::from(self.max)));
            for (label, q) in REPORTED_QUANTILES {
                fields.push((label, Json::from(self.quantile(q).unwrap())));
            }
        }
        fields
    }
}

/// Sentinel plane id meaning "not plane-scoped" — single-plane call sites
/// never mention planes and their export lines carry no `plane` field.
pub const NO_PLANE: u32 = u32::MAX;

/// Per-`(name, epoch, plane)` sketch store behind a single mutex.
/// Tail-latency recording sites are epoch-change-rate paths (flow
/// completions, re-solves, reroutes), not per-packet paths, so one
/// uncontended lock is cheap; the disabled case never reaches the registry
/// at all. The plane key (default [`NO_PLANE`]) lets multi-rail fabrics
/// export per-rail tails as separate JSONL lines.
#[derive(Default)]
pub struct SketchRegistry {
    map: Mutex<BTreeMap<(String, u64, u32), Sketch>>,
}

impl SketchRegistry {
    /// Creates an empty registry.
    pub fn new() -> SketchRegistry {
        SketchRegistry::default()
    }

    /// Records `value` into the sketch for `name` at `epoch` (unplaned).
    pub fn record(&self, name: &str, epoch: u64, value: f64) {
        self.record_plane(name, epoch, NO_PLANE, value);
    }

    /// Records `value` into the plane-scoped sketch for `name` at `epoch`.
    pub fn record_plane(&self, name: &str, epoch: u64, plane: u32, value: f64) {
        self.map
            .lock()
            .entry((name.to_string(), epoch, plane))
            .or_default()
            .record(value);
    }

    /// A copy of the unplaned sketch for `name` at `epoch`, if any samples
    /// landed.
    pub fn get(&self, name: &str, epoch: u64) -> Option<Sketch> {
        self.get_plane(name, epoch, NO_PLANE)
    }

    /// A copy of the plane-scoped sketch for `name` at `epoch`.
    pub fn get_plane(&self, name: &str, epoch: u64, plane: u32) -> Option<Sketch> {
        self.map
            .lock()
            .get(&(name.to_string(), epoch, plane))
            .cloned()
    }

    /// All epochs recorded under `name` (any plane), ascending, deduped.
    pub fn epochs(&self, name: &str) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .map
            .lock()
            .keys()
            .filter(|(n, _, _)| n == name)
            .map(|&(_, e, _)| e)
            .collect();
        out.dedup();
        out
    }

    /// All planes recorded under `name` (any epoch), ascending, deduped;
    /// [`NO_PLANE`] entries are excluded.
    pub fn planes(&self, name: &str) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .map
            .lock()
            .keys()
            .filter(|(n, _, p)| n == name && *p != NO_PLANE)
            .map(|&(_, _, p)| p)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The merge of every sketch recorded under `name`, across epochs and
    /// planes.
    pub fn merged(&self, name: &str) -> Option<Sketch> {
        let map = self.map.lock();
        let mut out: Option<Sketch> = None;
        for ((n, _, _), s) in map.iter() {
            if n == name {
                out.get_or_insert_with(Sketch::new).merge(s);
            }
        }
        out
    }

    /// Number of `(name, epoch, plane)` sketches held.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot as JSONL: one `{"type":"sketch","name":...,"epoch":...}`
    /// object per line, sorted by `(name, epoch, plane)` (byte-stable
    /// across identical runs). Plane-scoped sketches additionally carry a
    /// `plane` field; unplaned ones stay format-identical to before.
    pub fn to_jsonl(&self) -> String {
        let map = self.map.lock();
        let mut out = String::new();
        for ((name, epoch, plane), s) in map.iter() {
            let mut fields = s.to_json_fields();
            fields.push(("name", Json::str(name.clone())));
            fields.push(("epoch", Json::from(*epoch)));
            if *plane != NO_PLANE {
                fields.push(("plane", Json::from(u64::from(*plane))));
            }
            out.push_str(&Json::obj(fields).to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_exact_on_a_known_stream() {
        let mut s = Sketch::new();
        let mut vals: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        for &v in &vals {
            s.record(v);
        }
        vals.sort_by(f64::total_cmp);
        for q in [0.5, 0.95, 0.99, 0.999] {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let exact = vals[rank - 1];
            let est = s.quantile(q).unwrap();
            assert!(
                est >= exact && est <= 2.0 * exact,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = Sketch::new();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.tail(), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn merge_equals_union_stream() {
        let (mut a, mut b, mut u) = (Sketch::new(), Sketch::new(), Sketch::new());
        for i in 0..100 {
            let v = (i as f64) * 3.7 + 0.1;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), u.count());
        assert_eq!(a.sum().to_bits(), u.sum().to_bits());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(
                a.quantile(q).unwrap().to_bits(),
                u.quantile(q).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn registry_separates_planes() {
        let r = SketchRegistry::new();
        r.record("flow.completion_us", 1, 10.0);
        r.record_plane("flow.completion_us", 1, 0, 100.0);
        r.record_plane("flow.completion_us", 1, 1, 200.0);
        r.record_plane("flow.completion_us", 1, 1, 300.0);
        assert_eq!(r.len(), 3);
        assert_eq!(r.get("flow.completion_us", 1).unwrap().count(), 1);
        assert_eq!(r.get_plane("flow.completion_us", 1, 1).unwrap().count(), 2);
        assert_eq!(r.planes("flow.completion_us"), vec![0, 1]);
        // Merged folds every plane plus the unplaned stream.
        assert_eq!(r.merged("flow.completion_us").unwrap().count(), 4);
        // Export: plane-scoped lines carry a plane field, unplaned do not.
        let jsonl = r.to_jsonl();
        let mut planes = Vec::new();
        for line in jsonl.lines() {
            let j = crate::json::parse(line).unwrap();
            planes.push(j.get("plane").and_then(Json::as_num).map(|p| p as u32));
        }
        assert_eq!(planes, vec![Some(0), Some(1), None]);
    }

    #[test]
    fn registry_keys_by_name_and_epoch() {
        let r = SketchRegistry::new();
        r.record("flow.completion_us", 1, 10.0);
        r.record("flow.completion_us", 1, 20.0);
        r.record("flow.completion_us", 2, 1000.0);
        r.record("resolve_us", 1, 5.0);
        assert_eq!(r.len(), 3);
        assert_eq!(r.get("flow.completion_us", 1).unwrap().count(), 2);
        assert_eq!(r.epochs("flow.completion_us"), vec![1, 2]);
        let merged = r.merged("flow.completion_us").unwrap();
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.max(), Some(1000.0));
        // Export: one line per (name, epoch), parseable, sorted.
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let j = crate::json::parse(line).unwrap();
            assert_eq!(j.get("type").unwrap().as_str(), Some("sketch"));
            assert!(j.get("p999").is_some());
        }
    }
}
