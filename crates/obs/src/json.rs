//! Minimal JSON value model, writer and parser.
//!
//! The air-gapped build cannot use `serde_json`, and the observability
//! layer only needs flat, predictable documents (trace events, metric
//! lines, the run manifest). This module provides a small [`Json`] tree
//! with a spec-compliant string escaper and a strict recursive-descent
//! parser — the parser exists chiefly so tests can round-trip and
//! validate emitted artifacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node. Object keys are sorted (BTreeMap) so emitted
/// documents are byte-stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always serialized via `f64`/`i64` formatting rules).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience object builder.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String node.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parses a JSON document (see the module-level [`parse`]).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        parse(input)
    }

    /// Looks up a key if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The f64 value if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to a compact JSON string (`value.to_string()` works via
/// `ToString`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; clamp to null like most tracing emitters.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let b = input.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.i, msg }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.lit("null", Json::Null),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected {")?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':', "expected :")?;
            self.ws();
            map.insert(key, self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogates collapse to the replacement char;
                            // the emitter never writes them.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.i - 1;
                    let len = utf8_len(c);
                    if start + len > self.b.len() {
                        return Err(self.err("bad utf-8"));
                    }
                    let chunk = std::str::from_utf8(&self.b[start..start + len])
                        .map_err(|_| self.err("bad utf-8"))?;
                    s.push_str(chunk);
                    self.i = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let doc = Json::obj([
            ("name", Json::str("sweep/dfsssp")),
            ("n", Json::from(42u64)),
            ("ratio", Json::from(0.5)),
            ("ok", Json::from(true)),
            ("items", Json::Arr(vec![Json::from(1u64), Json::Null])),
        ]);
        let s = doc.to_string();
        assert_eq!(parse(&s).unwrap(), doc);
    }

    #[test]
    fn escapes_control_and_quotes() {
        let doc = Json::str("a\"b\\c\nd\te\u{1}");
        let s = doc.to_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(parse(&s).unwrap(), doc);
    }

    #[test]
    fn unicode_survives() {
        let doc = Json::str("µs → Perfetto ✓");
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(Json::from(3u64).to_string(), "3");
        assert_eq!(Json::from(-5i64).to_string(), "-5");
        assert_eq!(Json::from(2.5).to_string(), "2.5");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,", "\"abc", "{\"a\":}", "01x", "[1 2]", "nulL"] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
        assert!(parse("  {\"a\": [1, 2.0, \"x\"]}  ").is_ok());
    }

    #[test]
    fn object_keys_sorted_deterministically() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), Json::from(1u64));
        m.insert("a".to_string(), Json::from(2u64));
        assert_eq!(Json::Obj(m).to_string(), r#"{"a":2,"b":1}"#);
    }
}
