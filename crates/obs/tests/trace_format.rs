//! End-to-end validation of the exported artefacts: the trace file must be
//! a Chrome trace-event JSON object that Perfetto can load, and the metrics
//! export must be one well-formed JSON object per line.

use hxobs::{Json, ObsRecorder, Recorder};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hxobs-test-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn sample_recorder() -> ObsRecorder {
    let r = ObsRecorder::new();
    r.tracer.name_process(0, "des plane 0");
    r.tracer.name_thread(0, 0, "rank 0");
    r.tracer.name_thread(0, 1, "rank 1");
    r.span(0, 0, "compute", "des", 10.0, 25.0, vec![]);
    r.span(
        0,
        1,
        "send",
        "des",
        12.0,
        3.0,
        vec![
            ("to".to_string(), Json::from(0u64)),
            ("bytes".to_string(), Json::from(4096u64)),
        ],
    );
    r.instant(
        0,
        0,
        "deliver",
        "des",
        40.0,
        vec![("from".to_string(), Json::from(1u64))],
    );
    r.counter_add("des.messages", 2);
    r.gauge_set("des.last_makespan_s", 0.5);
    r.histogram_record("des.msg_bytes", 4096.0);
    r.histogram_record("des.msg_bytes", 65536.0);
    r
}

#[test]
fn trace_file_is_perfetto_loadable_chrome_json() {
    let dir = scratch_dir("trace");
    let rec = sample_recorder();
    let (metrics_path, trace_path) = rec.write_files(&dir, "unit").unwrap();
    assert_eq!(trace_path.file_name().unwrap(), "unit.trace.json");

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let root = Json::parse(&text).expect("trace file parses as JSON");
    assert_eq!(
        root.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    // 3 metadata records (process + 2 threads) + 2 spans + 1 instant.
    assert_eq!(events.len(), 6);

    let mut seen_non_meta = false;
    for e in events {
        // Every record carries the Chrome trace-event required fields.
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("pid").and_then(Json::as_num).is_some());
        assert!(e.get("tid").and_then(Json::as_num).is_some());
        match ph {
            "M" => {
                assert!(
                    !seen_non_meta,
                    "metadata records must precede trace records"
                );
                let name = e.get("name").and_then(Json::as_str).unwrap();
                assert!(name == "process_name" || name == "thread_name");
                assert!(e.get("args").and_then(|a| a.get("name")).is_some());
            }
            "X" => {
                seen_non_meta = true;
                assert!(e.get("ts").and_then(Json::as_num).is_some());
                let dur = e.get("dur").and_then(Json::as_num).unwrap();
                assert!(dur >= 0.0);
                assert_eq!(e.get("cat").and_then(Json::as_str), Some("des"));
            }
            "i" => {
                seen_non_meta = true;
                assert!(e.get("ts").and_then(Json::as_num).is_some());
                // Thread-scoped instants render as arrows in Perfetto.
                assert_eq!(e.get("s").and_then(Json::as_str), Some("t"));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }

    // Span args survive the round trip.
    let send = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("send"))
        .unwrap();
    assert_eq!(
        send.get("args")
            .and_then(|a| a.get("bytes"))
            .and_then(Json::as_num),
        Some(4096.0)
    );

    std::fs::remove_file(metrics_path).ok();
    std::fs::remove_file(trace_path).ok();
    std::fs::remove_dir(dir).ok();
}

#[test]
fn metrics_export_is_one_json_object_per_line() {
    let dir = scratch_dir("metrics");
    let rec = sample_recorder();
    let (metrics_path, trace_path) = rec.write_files(&dir, "unit").unwrap();
    assert_eq!(metrics_path.file_name().unwrap(), "unit.metrics.jsonl");

    let text = std::fs::read_to_string(&metrics_path).unwrap();
    let mut names = Vec::new();
    for line in text.lines() {
        let obj = Json::parse(line).expect("each line parses as JSON");
        let name = obj.get("name").and_then(Json::as_str).unwrap().to_string();
        match obj.get("type").and_then(Json::as_str).unwrap() {
            "counter" | "gauge" => {
                assert!(obj.get("value").and_then(Json::as_num).is_some());
            }
            "histogram" => {
                assert_eq!(obj.get("count").and_then(Json::as_num), Some(2.0));
                assert!(obj.get("buckets").is_some());
            }
            other => panic!("unexpected instrument type {other:?}"),
        }
        names.push(name);
    }
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted, "instruments are exported in sorted order");
    assert_eq!(
        names,
        vec!["des.last_makespan_s", "des.messages", "des.msg_bytes"]
    );

    std::fs::remove_file(metrics_path).ok();
    std::fs::remove_file(trace_path).ok();
    std::fs::remove_dir(dir).ok();
}
