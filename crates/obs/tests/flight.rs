//! Crash-path integration test: an injected panic must leave a parseable
//! `flightdump.json` holding the ring's tail — the spans and metrics that
//! led up to the crash plus the panic record itself.
//!
//! This file stays a single test: the panic hook, the global ring and the
//! `T2HX_OBS_DIR` override are all process-wide, and one test per binary
//! (integration tests are separate processes) is the cheap way to keep
//! them hermetic.

use hxobs::flight::{self, FlightRecorder};
use hxobs::{Json, ObsRecorder, Span};
use std::sync::Arc;

#[test]
fn injected_panic_dumps_parseable_flight_recording() {
    let dir = std::env::temp_dir().join(format!("hxobs_flight_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("T2HX_OBS_DIR", &dir);

    hxobs::install(Arc::new(ObsRecorder::new()));
    flight::install(Arc::new(FlightRecorder::new(64)));

    // Some pre-crash history for the ring to retain.
    let mut sp = Span::root(hxobs::track::RUNNER, 0, "step", "campaign");
    sp.set_epoch(11);
    let inner = sp.child("fail_link", "route");
    inner.end();
    sp.end();
    hxobs::count("pre_crash.counter", 2);

    let unwound = std::panic::catch_unwind(|| {
        panic!("injected flight-recorder test panic");
    });
    assert!(unwound.is_err());

    let dump = dir.join("flightdump.json");
    let text = std::fs::read_to_string(&dump).expect("panic hook wrote the dump");
    let doc = Json::parse(&text).expect("dump parses");
    assert!(doc.get("recorded").unwrap().as_num().unwrap() >= 4.0);
    let events = doc.get("events").unwrap().as_arr().unwrap();
    let name_of = |e: &Json| e.get("name").unwrap().as_str().unwrap().to_string();
    let kind_of = |e: &Json| e.get("kind").unwrap().as_str().unwrap().to_string();

    // The causal history survived: span begin/end pairs with epoch, the
    // counter bump, and the panic instant naming message and location.
    assert!(events.iter().any(|e| kind_of(e) == "span_end"
        && name_of(e) == "step"
        && e.get("epoch").and_then(Json::as_num) == Some(11.0)));
    assert!(events
        .iter()
        .any(|e| kind_of(e) == "span_begin" && name_of(e) == "fail_link"));
    assert!(events
        .iter()
        .any(|e| kind_of(e) == "counter" && name_of(e) == "pre_crash.counter"));
    let panic_ev = events
        .iter()
        .find(|e| kind_of(e) == "instant" && name_of(e).starts_with("panic: "))
        .expect("panic recorded as an instant");
    let msg = name_of(panic_ev);
    assert!(
        msg.contains("injected flight-recorder test panic") && msg.contains("tests/flight.rs"),
        "panic record carries message and location: {msg}"
    );

    hxobs::uninstall();
    flight::uninstall();
    std::env::remove_var("T2HX_OBS_DIR");
    let _ = std::fs::remove_dir_all(&dir);
}
