//! Property tests pinning the log₂-bucket sketch's quantile guarantee:
//! for positive samples inside the bucket range, every quantile estimate
//! `e` of the exact sample quantile `x` satisfies `x <= e <= 2x`, and
//! merging sketches is indistinguishable from recording the union stream.

use hxobs::Sketch;
use proptest::prelude::*;

/// Exact q-quantile under the sketch's rank convention: the sample at
/// rank `ceil(q * n)`, clamped to `[1, n]`, in ascending order.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ×2 bracket holds for arbitrary positive sample streams and
    /// arbitrary quantiles, across twelve decades of magnitude.
    #[test]
    fn quantile_brackets_exact_within_factor_two(
        vals in proptest::collection::vec(1e-9f64..1e12, 1..400),
        q in 0.001f64..1.0,
    ) {
        let mut s = Sketch::new();
        for &v in &vals {
            s.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = exact_quantile(&sorted, q);
        let est = s.quantile(q).unwrap();
        prop_assert!(
            est >= exact && est <= 2.0 * exact,
            "q={q}: estimate {est} outside [{exact}, {}]",
            2.0 * exact
        );
    }

    /// The reported tail (p50/p95/p99/p999) is monotone non-decreasing
    /// and pinned inside [min, max].
    #[test]
    fn tail_is_monotone_and_clamped(
        vals in proptest::collection::vec(1e-6f64..1e9, 1..200),
    ) {
        let mut s = Sketch::new();
        for &v in &vals {
            s.record(v);
        }
        let [p50, p95, p99, p999] = s.tail().unwrap();
        prop_assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
        prop_assert!(p50 >= s.min().unwrap());
        prop_assert!(p999 <= s.max().unwrap());
    }

    /// Merging two sketches answers every quantile exactly as one sketch
    /// that saw both streams — the property that makes per-epoch sketches
    /// safe to roll up.
    #[test]
    fn merge_is_union_stream(
        a in proptest::collection::vec(1e-3f64..1e9, 0..150),
        b in proptest::collection::vec(1e-3f64..1e9, 1..150),
        q in 0.01f64..1.0,
    ) {
        let (mut sa, mut sb, mut su) = (Sketch::new(), Sketch::new(), Sketch::new());
        for &v in &a {
            sa.record(v);
            su.record(v);
        }
        for &v in &b {
            sb.record(v);
            su.record(v);
        }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), su.count());
        prop_assert_eq!(sa.quantile(q).unwrap().to_bits(), su.quantile(q).unwrap().to_bits());
        prop_assert_eq!(sa.min().unwrap().to_bits(), su.min().unwrap().to_bits());
        prop_assert_eq!(sa.max().unwrap().to_bits(), su.max().unwrap().to_bits());
    }
}
