//! Integration tests for the causal span layer: the begin/end discipline
//! of explicitly-threaded [`hxobs::Span`] handles must materialize in the
//! Chrome trace export as well-formed trees — unique ids, resolvable
//! parent links, time-contained child intervals, epoch provenance — and
//! mirror into the flight ring as paired begin/end records.
//!
//! These tests swap the process-global sink, so they serialize on a local
//! mutex (integration-test binaries are separate processes, but tests in
//! this file share one).

use hxobs::flight::{FlightRecorder, Kind};
use hxobs::{flight, Json, ObsRecorder, Span, SpanCtx};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

static GLOBAL: Mutex<()> = Mutex::new(());

/// Installs a fresh recorder (and flight ring), returning the serializer
/// guard that keeps other tests off the globals.
fn fresh() -> (MutexGuard<'static, ()>, Arc<ObsRecorder>) {
    let guard = GLOBAL.lock().unwrap_or_else(|p| p.into_inner());
    let rec = Arc::new(ObsRecorder::new());
    hxobs::install(rec.clone());
    flight::install(Arc::new(FlightRecorder::new(256)));
    (guard, rec)
}

/// One span flattened back out of the trace export.
struct Ev {
    name: String,
    ts: f64,
    dur: f64,
    parent: u64,
    epoch: u64,
}

fn spans_of(rec: &ObsRecorder) -> HashMap<u64, Ev> {
    let doc = Json::parse(&rec.tracer.to_chrome_json()).expect("trace parses");
    let mut out = HashMap::new();
    for ev in doc.get("traceEvents").unwrap().as_arr().unwrap() {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let num = |k: &str| {
            ev.get("args")
                .and_then(|a| a.get(k))
                .and_then(Json::as_num)
                .unwrap_or(0.0) as u64
        };
        let id = num("span");
        assert_ne!(id, 0, "Span-API events always carry args.span");
        let prev = out.insert(
            id,
            Ev {
                name: ev.get("name").unwrap().as_str().unwrap().to_string(),
                ts: ev.get("ts").unwrap().as_num().unwrap(),
                dur: ev.get("dur").unwrap().as_num().unwrap(),
                parent: num("parent"),
                epoch: num("epoch"),
            },
        );
        assert!(prev.is_none(), "span ids are unique");
    }
    out
}

#[test]
fn span_tree_nests_in_trace_with_epochs() {
    let (_g, rec) = fresh();

    // The campaign's causal shape: step → fail_link → pathdb_patch, with
    // repath/resolve as step's direct children.
    let mut step = Span::root(hxobs::track::RUNNER, 0, "step", "campaign");
    step.set_epoch(7);
    {
        let mut fail = step.child("fail_link", "route");
        fail.set_epoch(7);
        let mut patch = fail.child("pathdb_patch", "route");
        patch.set_epoch(7);
        patch.end();
        fail.end();
        let repath = Span::under(step.ctx(), hxobs::track::RUNNER, 0, "repath", "campaign");
        repath.end();
        let resolve = Span::under(step.ctx(), hxobs::track::RUNNER, 0, "resolve", "campaign");
        resolve.end();
    }
    let step_id = step.ctx().id;
    step.end();
    hxobs::uninstall();
    flight::uninstall();

    let spans = spans_of(&rec);
    assert_eq!(spans.len(), 5);
    let by_name: HashMap<&str, u64> = spans.iter().map(|(&id, e)| (e.name.as_str(), id)).collect();
    assert_eq!(by_name["step"], step_id);
    assert_eq!(spans[&by_name["fail_link"]].parent, step_id);
    assert_eq!(spans[&by_name["repath"]].parent, step_id);
    assert_eq!(spans[&by_name["resolve"]].parent, step_id);
    assert_eq!(spans[&by_name["pathdb_patch"]].parent, by_name["fail_link"]);
    assert_eq!(spans[&by_name["step"]].epoch, 7);
    assert_eq!(spans[&by_name["pathdb_patch"]].epoch, 7);

    // Every child interval sits inside its parent's.
    for (id, e) in &spans {
        if e.parent == 0 {
            continue;
        }
        let p = &spans[&e.parent];
        assert!(
            e.ts >= p.ts && e.ts + e.dur <= p.ts + p.dur,
            "span {id} ({}) escapes its parent",
            e.name
        );
    }
}

#[test]
fn spans_mirror_into_flight_ring_as_begin_end_pairs() {
    let (_g, _rec) = fresh();

    let mut root = Span::root(1, 0, "des_run", "des");
    root.set_epoch(3);
    let child = root.child("resolve", "des");
    let (root_id, child_id) = (root.ctx().id, child.ctx().id);
    child.end();
    root.end();
    hxobs::uninstall();
    let ring = flight::uninstall().expect("ring was armed");

    let evs: Vec<_> = ring.snapshot().into_iter().map(|(_, e)| e).collect();
    let find = |kind: Kind, span: u64| evs.iter().find(|e| e.kind == kind && e.span == span);
    let rb = find(Kind::SpanBegin, root_id).expect("root begin");
    let re = find(Kind::SpanEnd, root_id).expect("root end");
    let cb = find(Kind::SpanBegin, child_id).expect("child begin");
    let ce = find(Kind::SpanEnd, child_id).expect("child end");
    assert_eq!(rb.name, "des_run");
    assert_eq!(ce.name, "resolve");
    assert_eq!(cb.parent, root_id);
    assert_eq!(re.epoch, 3);
    // Begin/end ordering: child closes before its parent.
    assert!(cb.ts_us >= rb.ts_us && ce.ts_us <= re.ts_us);
    assert!(re.value >= ce.value, "parent duration covers the child's");
}

#[test]
fn disabled_spans_are_inert_and_emit_nothing() {
    let (_g, rec) = fresh();
    hxobs::uninstall();
    flight::uninstall();

    let mut sp = Span::root(1, 0, "ghost", "test");
    assert!(!sp.is_live());
    assert_eq!(sp.ctx(), SpanCtx::none());
    sp.arg("k", Json::from(1u64));
    let child = sp.child("ghost_child", "test");
    child.end();
    sp.end();
    assert!(rec.tracer.is_empty(), "no events reach an uninstalled sink");
}
