//! Cross-crate integration: build the dual-plane system and exercise the
//! full pipeline — topology, routing, placement, PML, collective schedules,
//! both the round model and the exact DES — end to end.

use t2hx::core::{Combo, Runner, T2hx};
use t2hx::load::imb::ImbCollective;
use t2hx::mpi::{Fabric, Placement, Pml, ScheduleBuilder};
use t2hx::route::{verify_deadlock_free, verify_paths};
use t2hx::sim::{NetParams, Simulator};
use t2hx::topo::NodeId;

fn mini() -> T2hx {
    T2hx::mini().expect("mini system routes")
}

#[test]
fn all_routing_states_verify() {
    let sys = mini();
    for (topo, routes) in [
        (sys.fattree(), sys.ft_ftree()),
        (sys.fattree(), sys.ft_sssp()),
        (sys.hyperx(), sys.hx_dfsssp()),
        (sys.hyperx(), sys.hx_parx()),
    ] {
        verify_paths(topo, routes).unwrap();
        let vls = verify_deadlock_free(topo, routes).unwrap();
        assert!(vls <= 8, "{}: {} VLs", routes.engine, vls);
    }
}

#[test]
fn des_and_round_model_agree_across_combos() {
    // The fast round model used for sweeps must track the exact
    // discrete-event simulation within a small factor on every combo.
    let sys = mini();
    let n = 16;
    for combo in Combo::all() {
        let fabric = sys.fabric(combo, n, 1);
        let mut rp = t2hx::mpi::RoundProgram::new(n);
        rp.allreduce(32 * 1024);
        let est = t2hx::mpi::estimate(&fabric, &rp);

        let mut sb = ScheduleBuilder::new(n);
        sb.allreduce(32 * 1024);
        let des = Simulator::new(sys.topo(combo), &fabric, sys.params())
            .run(&sb.build())
            .makespan;
        let ratio = est / des;
        assert!(
            (0.3..3.0).contains(&ratio),
            "{}: est {est} vs des {des} (ratio {ratio})",
            combo.label()
        );
    }
}

#[test]
fn hyperx_beats_fattree_on_small_message_latency() {
    // Fewer switch hops => lower zero-byte latency (the paper's core
    // latency argument for low-diameter topologies).
    let sys = mini();
    let r = Runner::default();
    let ft = r.imb_tmin_us(&sys, Combo::FtFtreeLinear, ImbCollective::Bcast, 16, 1);
    let hx = r.imb_tmin_us(&sys, Combo::HxDfssspLinear, ImbCollective::Bcast, 16, 1);
    assert!(
        hx <= ft * 1.05,
        "HyperX bcast {hx}us should not lose to Fat-Tree {ft}us"
    );
}

#[test]
fn dense_hyperx_alltoall_loses_bandwidth() {
    // The Figure-1/Figure-4f effect: a dense allocation on the HyperX
    // oversubscribes the single inter-switch cables for large alltoalls.
    let sys = mini();
    let r = Runner::default();
    let bytes = 1 << 20;
    let ft = r.imb_tmin_us(
        &sys,
        Combo::FtFtreeLinear,
        ImbCollective::Alltoall,
        16,
        bytes,
    );
    let hx = r.imb_tmin_us(
        &sys,
        Combo::HxDfssspLinear,
        ImbCollective::Alltoall,
        16,
        bytes,
    );
    assert!(
        hx > ft,
        "dense HyperX alltoall ({hx}us) should exceed Fat-Tree ({ft}us)"
    );
}

#[test]
fn parx_pml_switches_paths_at_threshold() {
    use t2hx::sim::PathResolver;
    let sys = mini();
    let fabric = sys.fabric(Combo::HxParxClustered, 32, 3);
    // Find a rank pair whose small and large routes differ in length.
    let mut found = false;
    for a in 0..32 {
        for b in 0..32 {
            if a == b {
                continue;
            }
            let small = fabric.resolve(a, b, 511, 0);
            let large = fabric.resolve(a, b, 512, 0);
            if large.hops.len() > small.hops.len() {
                found = true;
            }
        }
    }
    assert!(found, "PARX must provide non-minimal large-message routes");
}

#[test]
fn explicit_fabric_runs_des_collectives_on_both_planes() {
    let sys = mini();
    for (topo, routes) in [
        (sys.fattree(), sys.ft_ftree()),
        (sys.hyperx(), sys.hx_dfsssp()),
    ] {
        let nodes: Vec<NodeId> = topo.nodes().collect();
        let fabric = Fabric::new(
            topo,
            routes,
            Placement::linear(&nodes, 32),
            Pml::Ob1,
            NetParams::qdr(),
        )
        .expect("routable fabric");
        let mut sb = ScheduleBuilder::new(32);
        sb.barrier();
        sb.bcast(3, 1 << 16);
        sb.alltoall(2048);
        sb.allreduce(1 << 18);
        let res = Simulator::new(topo, &fabric, NetParams::qdr()).run(&sb.build());
        assert!(res.makespan > 0.0 && res.makespan < 1.0);
        assert!(res.messages > 100);
    }
}

#[test]
fn walltime_produces_missing_points() {
    let sys = mini();
    let r = Runner {
        walltime: 1e-6,
        ..Runner::default()
    };
    let w = t2hx::load::proxy::MiniFe { iters: 1 };
    use t2hx::load::workload::Workload;
    let s = r.run(&sys, Combo::baseline(), &w, 8);
    assert!(s.values.is_empty());
    let _ = w.name();
}
