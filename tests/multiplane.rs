//! Multi-plane integration: N-plane system assembly at the paper's scale,
//! rail-policy failover guarantees, and campaign survival under churn.

use t2hx::core::{run_multiplane_campaign, CampaignConfig, MultiPlaneConfig, System};
use t2hx::mpi::{Fabric, MultiFabric, Placement, Pml, RailPolicy};
use t2hx::route::engines::{Dfsssp, RoutingEngine};
use t2hx::sim::{FluidNet, NetParams, SolverKind};
use t2hx::topo::hyperx::HyperXConfig;
use t2hx::topo::NodeId;

/// Satellite guarantee: when an entire plane is lost, every in-flight flow
/// re-resolves onto a surviving rail and runs to completion — under each
/// rail-selection policy.
#[test]
fn every_in_flight_flow_completes_under_single_plane_loss() {
    let topo = HyperXConfig::new(vec![4, 4], 2).build();
    let nodes: Vec<NodeId> = topo.nodes().collect();
    let n = nodes.len();
    let routes: Vec<_> = (0..3)
        .map(|_| Dfsssp::default().route(&topo).unwrap())
        .collect();
    let bytes: u64 = 1 << 20;
    for policy in RailPolicy::all() {
        let rails: Vec<Fabric<'_>> = routes
            .iter()
            .map(|r| {
                Fabric::new(
                    &topo,
                    r,
                    Placement::linear(&nodes, n),
                    Pml::Ob1,
                    NetParams::qdr(),
                )
                .expect("routable fabric")
            })
            .collect();
        let mf = MultiFabric::new(rails, policy);
        let mut nets: Vec<FluidNet> = (0..3)
            .map(|_| FluidNet::with_solver(&topo, SolverKind::Exact))
            .collect();
        // Launch a flow population across the rails.
        let mut flows: Vec<(usize, usize, usize, usize)> = Vec::new();
        for seq in 0..24u64 {
            let src = (seq as usize * 7) % n;
            let dst = (src + 1 + (seq as usize * 3) % (n - 1)) % n;
            let p = mf.select_rail(src, dst, seq);
            let rp = mf.resolve_on(p, src, dst, bytes, seq);
            let id = nets[p].add_flow(rp.hops, bytes);
            flows.push((p, id, src, dst));
        }
        assert!(
            flows.iter().any(|&(p, ..)| p == 0),
            "{policy:?}: the doomed plane must carry traffic for the test to bite"
        );
        // Single-plane loss: plane 0 drops out of rail selection entirely,
        // and its flows migrate the way the campaign engine migrates them.
        mf.fail_plane(0);
        for &(p, id, src, dst) in &flows {
            if p != 0 {
                continue;
            }
            nets[0].remove(id);
            let q = mf.select_rail(src, dst, 1_000);
            assert_ne!(q, 0, "{policy:?} selected the dead plane");
            let rp = mf.resolve_on(q, src, dst, bytes, 1_000);
            nets[q].add_flow(rp.hops, bytes);
        }
        nets[0].recompute();
        assert_eq!(nets[0].active_flows(), 0, "{policy:?}: dead plane drained");
        // Every flow completes on a surviving plane.
        let mut done = 0usize;
        let mut drained = Vec::new();
        for net in nets.iter_mut().skip(1) {
            net.recompute();
            while let Some(t) = net.next_completion() {
                net.advance_to(t);
                net.drained_into(&mut drained);
                done += drained.len();
                for &id in &drained {
                    net.remove(id);
                }
                net.recompute();
            }
        }
        assert_eq!(done, 24, "{policy:?}: every in-flight flow completes");
    }
}

/// Acceptance: a 4-plane 12x8 T=7 system — 4 x 672 = 2688 endpoints —
/// assembles, routes every plane, and resolves on every rail.
#[test]
fn four_plane_t7_system_assembles_and_routes() {
    let sys = System::replicated_hyperx(HyperXConfig::t2_hyperx(672), 4, |_| {
        Box::new(Dfsssp::default())
    })
    .expect("4-plane T=7 system routes");
    assert_eq!(sys.num_planes(), 4);
    assert_eq!(sys.num_nodes(), 672);
    assert_eq!(sys.num_planes() * sys.num_nodes(), 2688);
    let set = sys.plane_set();
    assert_eq!(set.num_planes(), 4);
    for p in 0..4 {
        assert_eq!(sys.plane(p).topo().num_switches(), 96);
        assert_eq!(set.epoch(p), 1);
    }
    // Every rail resolves the same rank pair through its own plane.
    let nodes: Vec<NodeId> = sys.plane(0).topo().nodes().collect();
    let placement = Placement::linear(&nodes, sys.num_nodes());
    let mf = sys.multi_fabric(&placement, Pml::Ob1, RailPolicy::RoundRobin);
    for p in 0..4 {
        let rp = mf.resolve_on(p, 0, 671, 1 << 20, 0);
        assert!(!rp.hops.is_empty(), "plane {p} resolves");
    }
}

/// Acceptance: the same 4-plane T=7 system survives a seeded fault-churn
/// campaign with plane-failover — churn on every plane, flows migrating
/// to surviving rails, and per-shard epochs advancing independently.
#[test]
fn four_plane_t7_campaign_survives_with_failover() {
    let topo = HyperXConfig::t2_hyperx(672).build();
    let cfg = MultiPlaneConfig {
        planes: 4,
        rail: RailPolicy::FlowHash,
        failover: true,
        force_failover: true,
        base: CampaignConfig {
            seed: 0x7258,
            mtbf: 0.002,
            mttr: 0.004,
            duration: 0.02,
            flows: 16,
            bytes: 4 << 20,
            max_down: 8,
            solver: SolverKind::Incremental,
            ..CampaignConfig::default()
        },
    };
    let r = run_multiplane_campaign(&topo, |_| Box::new(Dfsssp::default()), &cfg)
        .expect("campaign survives");
    assert_eq!(r.planes, 4);
    let fails: u64 = r.failures.iter().sum();
    assert!(fails > 0, "churn must fire: {r:?}");
    assert_eq!(r.failures, r.recoveries, "campaign ends healed: {r:?}");
    assert!(
        r.failovers > 0,
        "flows must migrate off faulted planes: {r:?}"
    );
    assert!(r.healthy_completions > 0 && r.faulted_completions > 0);
    assert_eq!(r.final_epochs.len(), 4);
    for (p, &e) in r.final_epochs.iter().enumerate() {
        assert!(
            e >= 1 + r.failures[p] + r.recoveries[p],
            "plane {p}: epoch {e} vs events {r:?}"
        );
    }
}
