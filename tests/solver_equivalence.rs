//! End-to-end congestion-engine equivalence: for every (topology, engine,
//! placement) combo of the dual-plane system, a full DES collective run
//! under the `Incremental` backend must be bit-identical to the `Exact`
//! oracle — makespan, per-rank finish times and message counts.

use t2hx::core::{Combo, T2hx};
use t2hx::mpi::ScheduleBuilder;
use t2hx::sim::solver::SolverKind;
use t2hx::sim::{RunResult, Simulator};

fn assert_bit_identical(combo: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.messages, b.messages, "{combo}: message count");
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "{combo}: makespan {} vs {}",
        a.makespan,
        b.makespan
    );
    assert_eq!(a.finish.len(), b.finish.len());
    for (i, (x, y)) in a.finish.iter().zip(&b.finish).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{combo}: rank {i}: {x} vs {y}");
    }
}

#[test]
fn des_runs_are_bit_identical_across_backends_on_every_combo() {
    let sys = T2hx::mini().expect("mini system routes");
    let n = 16;
    // A contention-heavy mixed schedule: barrier, fan-out, alltoall and a
    // reduction, so flows constantly join and leave shared cables.
    let mut sb = ScheduleBuilder::new(n);
    sb.barrier();
    sb.bcast(1, 1 << 16);
    sb.alltoall(4096);
    sb.allreduce(1 << 17);
    let program = sb.build();

    for combo in Combo::all() {
        let fabric = sys.fabric(combo, n, 1);
        let run = |kind: SolverKind| {
            Simulator::new(sys.topo(combo), &fabric, sys.params().with_solver(kind)).run(&program)
        };
        let exact = run(SolverKind::Exact);
        let incr = run(SolverKind::Incremental);
        assert!(exact.makespan > 0.0, "{}: empty run", combo.label());
        assert_bit_identical(combo.label(), &exact, &incr);
    }
}
