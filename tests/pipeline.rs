//! Integration tests for the extended pipeline: profile recording →
//! demand-aware PARX re-routing, the adaptive-routing model, the n-D PARX
//! generalization, and the cost/dark-fiber analyses.

use t2hx::core::{Combo, T2hx};
use t2hx::load::profile::RankProfile;
use t2hx::load::proxy::Swfft;
use t2hx::load::workload::Workload;
use t2hx::mpi::rounds::{estimate_adaptive, estimate_detailed};
use t2hx::mpi::RoundProgram;
use t2hx::route::engines::{ParxNd, RoutingEngine};
use t2hx::route::{verify_deadlock_free, verify_paths};
use t2hx::sim::stats::LinkUsage;
use t2hx::topo::cost::{BillOfMaterials, CostModel};
use t2hx::topo::hyperx::HyperXConfig;

#[test]
fn profile_reroute_pipeline_keeps_correctness() {
    let mut sys = T2hx::mini().unwrap();
    let w = Swfft {
        reps: 2,
        local_bytes: 8 << 20,
    };
    let n = 16;
    let placement = sys.placement(Combo::HxParxClustered, n, 1);
    let before = {
        let f = sys.fabric(Combo::HxParxClustered, n, 1);
        w.kernel_seconds(&f, n)
    };
    let demand = RankProfile::of_workload(&w, n).bind(&placement, sys.num_nodes());
    sys.reroute_parx(demand).unwrap();
    verify_paths(sys.hyperx(), sys.hx_parx()).unwrap();
    verify_deadlock_free(sys.hyperx(), sys.hx_parx()).unwrap();
    let after = {
        let f = sys.fabric(Combo::HxParxClustered, n, 1);
        w.kernel_seconds(&f, n)
    };
    // Re-routing must not catastrophically regress the profiled workload.
    assert!(after <= before * 1.2, "before {before}, after {after}");
}

#[test]
fn adaptive_never_loses_to_static_on_congested_patterns() {
    let sys = T2hx::mini().unwrap();
    let fabric = sys.fabric(Combo::HxParxClustered, 32, 2);
    for bytes in [4u64 << 10, 256 << 10, 4 << 20] {
        let mut rp = RoundProgram::new(32);
        rp.alltoall(bytes);
        let adaptive = estimate_adaptive(&fabric, &rp, 4);
        // Compare against static LID0 over the same routes (no bfo cost in
        // either, so the difference is pure path choice).
        let static_f = t2hx::mpi::Fabric::new(
            sys.topo(Combo::HxParxClustered),
            sys.routes(Combo::HxParxClustered),
            sys.placement(Combo::HxParxClustered, 32, 2),
            t2hx::mpi::Pml::Ob1,
            sys.params(),
        )
        .expect("routable fabric");
        let static_t = t2hx::mpi::estimate(&static_f, &rp);
        assert!(
            adaptive <= static_t * 1.001,
            "{bytes}B: adaptive {adaptive} vs static {static_t}"
        );
    }
}

#[test]
fn parx_nd_matches_parx_spirit_in_3d() {
    let topo = HyperXConfig::new(vec![4, 4, 2], 1).build();
    let routes = ParxNd::default().route(&topo).unwrap();
    verify_paths(&topo, &routes).unwrap();
    let vls = verify_deadlock_free(&topo, &routes).unwrap();
    assert!(vls <= 8);
}

#[test]
fn dark_fiber_shrinks_under_parx() {
    let sys = T2hx::mini().unwrap();
    let n = 32;
    let mut rp = RoundProgram::new(n);
    rp.alltoall(1 << 20);
    let usage = |combo: Combo| {
        let f = t2hx::mpi::Fabric::new(
            sys.topo(combo),
            sys.routes(combo),
            sys.placement(Combo::HxDfssspLinear, n, 1), // same dense placement
            t2hx::mpi::Pml::Ob1,
            sys.params(),
        )
        .expect("routable fabric");
        let d = estimate_detailed(&f, &rp);
        LinkUsage::of(sys.topo(combo), &d.link_bytes)
    };
    let dfsssp = usage(Combo::HxDfssspLinear);
    let parx = usage(Combo::HxParxClustered);
    // PARX's virtual-LID paths exist in the tables even under ob1/LID0;
    // its detour trees must not *reduce* the lit cable count.
    assert!(parx.lit + parx.dark == dfsssp.lit + dfsssp.dark);
    assert!(dfsssp.lit > 0 && parx.lit > 0);
}

#[test]
fn hyperx_cost_structure_beats_fattree_at_scale() {
    let sys = T2hx::build(224, false).unwrap();
    let m = CostModel::default();
    let hx = BillOfMaterials::of(sys.hyperx());
    let ft = BillOfMaterials::of(sys.fattree());
    assert!(hx.price(&m) < ft.price(&m));
    assert!(hx.aoc < ft.aoc);
}

#[test]
fn subnet_manager_screens_and_routes_related_topologies() {
    // The bring-up pipeline generalizes beyond the paper's two planes:
    // screen a Dragonfly's cables, disable the bad ones, route with LASH,
    // and survive a fail-in-place event.
    use t2hx::route::engines::Lash;
    use t2hx::route::SubnetManager;
    use t2hx::topo::dragonfly::DragonflyConfig;
    use t2hx::topo::{CableHealth, CableScreening, LinkClass};

    let mut topo = DragonflyConfig::balanced(2).build();
    let health = CableHealth::generate(&topo, 0.05, 21);
    CableScreening::run(&mut topo, &health, 2.0, 3);
    let mut sm = SubnetManager::new(topo, Box::new(Lash::default()));
    let report = sm.sweep().unwrap();
    assert_eq!(report.paths.pairs, 72 * 71);
    assert!(report.vls <= 8);
    // Kill one global cable; the manager must re-route around it.
    let global = sm
        .topo()
        .links()
        .find(|(id, l)| l.class == LinkClass::Aoc && sm.topo().is_active(*id))
        .unwrap()
        .0;
    let report = sm.fail_link(global).unwrap();
    assert_eq!(report.paths.pairs, 72 * 71);
}
