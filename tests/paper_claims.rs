//! Integration tests pinning the paper's headline claims on the
//! full-scale (672-node) system. These are the quantitative anchors of
//! EXPERIMENTS.md; they run in seconds in release mode but are `ignore`d
//! under plain `cargo test` debug runs where routing the full system is
//! slow. Run with `cargo test --release -- --ignored` or via the bench
//! harnesses.
//!
//! Each full-scale claim also has a `_quick` variant that runs on every
//! plain `cargo test`: a 168-node dual-plane slice (24 full 7-node HyperX
//! switches — dense enough to reproduce every effect) routed in well under
//! a second even in debug mode. The quick bands were calibrated
//! empirically and sit inside the full-scale bands wherever the claim is
//! scale-independent.

use std::sync::OnceLock;
use t2hx::core::{Combo, T2hx};
use t2hx::load::mpigraph::{average_bandwidth, mpigraph};
use t2hx::mpi::{Fabric, Placement};
use t2hx::topo::{NodeId, TopologyProps};

fn sys() -> &'static T2hx {
    static SYS: OnceLock<T2hx> = OnceLock::new();
    SYS.get_or_init(|| T2hx::build(672, true).expect("full system"))
}

/// The CI-sized slice: same 12x8 switch grid, same fault plan, but only
/// 168 nodes — the first 24 HyperX switches carry the paper's full 7
/// nodes each, so contention effects (Figure 1, eBB, PARX detours) appear
/// at full strength.
fn quick_sys() -> &'static T2hx {
    static QS: OnceLock<T2hx> = OnceLock::new();
    QS.get_or_init(|| T2hx::build(168, true).expect("quick system"))
}

fn fabric_of(s: &T2hx, combo: Combo, n: usize) -> Fabric<'_> {
    Fabric::new(
        s.topo(combo),
        s.routes(combo),
        Placement::linear(&s.topo(combo).nodes().collect::<Vec<NodeId>>(), n),
        combo.pml(),
        s.params(),
    )
    .expect("routable fabric")
}

fn linear_fabric(combo: Combo, n: usize) -> Fabric<'static> {
    fabric_of(sys(), combo, n)
}

#[test]
#[ignore = "full-scale: run with --release -- --ignored"]
fn claim_bisection_bandwidths() {
    // Section 2.3: HyperX 57.1% bisection; Fat-Tree more than full.
    let s = sys();
    let hx = TopologyProps::bisection_ratio(s.hyperx());
    assert!((0.50..0.60).contains(&hx), "HyperX bisection {hx}");
    let ft = TopologyProps::bisection_ratio(s.fattree());
    assert!(ft > 1.0, "Fat-Tree bisection {ft}");
}

#[test]
#[ignore = "full-scale: run with --release -- --ignored"]
fn claim_vl_budgets() {
    // Section 4.4.3: DFSSSP needs 3 VLs on the 12x8 HyperX; PARX 5-8.
    // Our reproduction: within those hardware budgets (exact counts depend
    // on tie-breaking).
    let s = sys();
    assert!(
        s.hx_dfsssp().num_vls <= 3,
        "DFSSSP {} VLs",
        s.hx_dfsssp().num_vls
    );
    assert!(s.hx_parx().num_vls <= 8, "PARX {} VLs", s.hx_parx().num_vls);
    assert!(s.hx_parx().num_vls >= s.hx_dfsssp().num_vls);
}

#[test]
#[ignore = "full-scale: run with --release -- --ignored"]
fn claim_figure1_bandwidth_ordering() {
    // Figure 1: FT 2.26 GiB/s > PARX 1.39 > minimal HyperX 0.84, with PARX
    // recovering ~+66% over minimal routing.
    let n = 28;
    let bytes = 1 << 20;
    let ft = average_bandwidth(&mpigraph(&linear_fabric(Combo::FtFtreeLinear, n), n, bytes));
    let hx = average_bandwidth(&mpigraph(
        &linear_fabric(Combo::HxDfssspLinear, n),
        n,
        bytes,
    ));
    let px = average_bandwidth(&mpigraph(
        &linear_fabric(Combo::HxParxClustered, n),
        n,
        bytes,
    ));
    assert!(ft > px && px > hx, "ordering: ft {ft} px {px} hx {hx}");
    let gain = px / hx - 1.0;
    assert!(
        (0.3..1.2).contains(&gain),
        "PARX recovery {gain:+.2} (paper +0.66)"
    );
}

#[test]
#[ignore = "full-scale: run with --release -- --ignored"]
fn claim_parx_barrier_band() {
    // Figure 5b: PARX slows Barrier 2.8x-6.9x (gain -0.65..-0.85).
    let s = sys();
    let r = t2hx::core::Runner::default();
    use t2hx::load::imb::ImbCollective;
    for n in [7usize, 56, 672] {
        let g = r.imb_gain(s, Combo::HxParxClustered, ImbCollective::Barrier, n, 0);
        assert!((-0.90..=-0.40).contains(&g), "n={n}: PARX barrier gain {g}");
    }
}

#[test]
#[ignore = "full-scale: run with --release -- --ignored"]
fn claim_ebb_parx_recovers_dense_case() {
    // Figure 5c: at 14 nodes (two full switches), PARX almost doubles the
    // effective bisection bandwidth vs DFSSSP (~1.9x).
    use t2hx::load::ebb::effective_bisection_bandwidth;
    let n = 14;
    let dfsssp = {
        let f = linear_fabric(Combo::HxDfssspLinear, n);
        let s = effective_bisection_bandwidth(&f, n, 1 << 20, 100, 1);
        s.iter().sum::<f64>() / s.len() as f64
    };
    let parx = {
        let f = linear_fabric(Combo::HxParxClustered, n);
        let s = effective_bisection_bandwidth(&f, n, 1 << 20, 100, 1);
        s.iter().sum::<f64>() / s.len() as f64
    };
    let ratio = parx / dfsssp;
    assert!(
        (1.3..2.5).contains(&ratio),
        "PARX eBB recovery {ratio:.2}x (paper ~1.9x)"
    );
}

#[test]
#[ignore = "full-scale: run with --release -- --ignored"]
fn claim_capacity_totals_in_band() {
    // Figure 7: 980-1355 completed runs over the five combos.
    use t2hx::cap::{paper_mix, CapacityConfig};
    use t2hx::core::run_capacity_combo;
    let s = sys();
    for combo in Combo::all() {
        let res = run_capacity_combo(s, combo, &paper_mix(), &CapacityConfig::default(), 7);
        let total = res.total_runs();
        assert!(
            (900..1500).contains(&total),
            "{}: {total} runs",
            combo.label()
        );
    }
}

// ---- CI-sized variants: same assertions, 168-node slice, every run ----

#[test]
fn claim_bisection_bandwidths_quick() {
    // Scale-independent: the bisection ratio is a property of the full
    // 12x8 grid and the Clos wiring, and computing it needs no routing —
    // so the quick variant pins the exact full-scale numbers.
    use t2hx::topo::fattree::FatTreeConfig;
    use t2hx::topo::hyperx::HyperXConfig;
    let hx = TopologyProps::bisection_ratio(&HyperXConfig::t2_hyperx(672).build());
    assert!((0.50..0.60).contains(&hx), "HyperX bisection {hx}");
    let ft = TopologyProps::bisection_ratio(&FatTreeConfig::tsubame2(672));
    assert!(ft > 1.0, "Fat-Tree bisection {ft}");
}

#[test]
fn claim_vl_budgets_quick() {
    // Hardware VL budgets hold on the slice (measured: 2 VLs each).
    let s = quick_sys();
    assert!(
        s.hx_dfsssp().num_vls <= 3,
        "DFSSSP {} VLs",
        s.hx_dfsssp().num_vls
    );
    assert!(s.hx_parx().num_vls <= 8, "PARX {} VLs", s.hx_parx().num_vls);
    assert!(s.hx_parx().num_vls >= s.hx_dfsssp().num_vls);
}

#[test]
fn claim_figure1_bandwidth_ordering_quick() {
    // Figure 1's ordering and the PARX recovery band reproduce on the
    // slice (measured: ft 2.95 > px 2.45 > hx 1.36, gain +0.80).
    let s = quick_sys();
    let n = 28;
    let bytes = 1 << 20;
    let ft = average_bandwidth(&mpigraph(&fabric_of(s, Combo::FtFtreeLinear, n), n, bytes));
    let hx = average_bandwidth(&mpigraph(&fabric_of(s, Combo::HxDfssspLinear, n), n, bytes));
    let px = average_bandwidth(&mpigraph(
        &fabric_of(s, Combo::HxParxClustered, n),
        n,
        bytes,
    ));
    assert!(ft > px && px > hx, "ordering: ft {ft} px {px} hx {hx}");
    let gain = px / hx - 1.0;
    assert!(
        (0.3..1.2).contains(&gain),
        "PARX recovery {gain:+.2} (paper +0.66)"
    );
}

#[test]
fn claim_parx_barrier_band_quick() {
    // Figure 5b's band at the slice's job sizes (measured: -0.63, -0.48).
    let s = quick_sys();
    let r = t2hx::core::Runner::default();
    use t2hx::load::imb::ImbCollective;
    for n in [7usize, 56] {
        let g = r.imb_gain(s, Combo::HxParxClustered, ImbCollective::Barrier, n, 0);
        assert!((-0.90..=-0.40).contains(&g), "n={n}: PARX barrier gain {g}");
    }
}

#[test]
fn claim_ebb_parx_recovers_dense_case_quick() {
    // Figure 5c's dense case is 14 nodes — two full switches — which the
    // slice carries verbatim (measured ratio: 1.57x).
    use t2hx::load::ebb::effective_bisection_bandwidth;
    let s = quick_sys();
    let n = 14;
    let dfsssp = {
        let f = fabric_of(s, Combo::HxDfssspLinear, n);
        let v = effective_bisection_bandwidth(&f, n, 1 << 20, 40, 1);
        v.iter().sum::<f64>() / v.len() as f64
    };
    let parx = {
        let f = fabric_of(s, Combo::HxParxClustered, n);
        let v = effective_bisection_bandwidth(&f, n, 1 << 20, 40, 1);
        v.iter().sum::<f64>() / v.len() as f64
    };
    let ratio = parx / dfsssp;
    assert!(
        (1.3..2.5).contains(&ratio),
        "PARX eBB recovery {ratio:.2}x (paper ~1.9x)"
    );
}

#[test]
fn claim_capacity_totals_in_band_quick() {
    // Figure 7 shrunk to the slice: a three-app mix sized for 168 nodes,
    // totals pinned to the measured band (805-815 across combos).
    use t2hx::cap::{AppSlot, CapacityConfig};
    use t2hx::core::run_capacity_combo;
    use t2hx::load::proxy::{Amg, Swfft};
    use t2hx::load::x500::Hpl;
    let quick_mix = || -> Vec<AppSlot> {
        vec![
            AppSlot {
                workload: Box::new(Amg { iters: 10 }),
                nodes: 48,
            },
            AppSlot {
                workload: Box::new(Swfft {
                    reps: 4,
                    local_bytes: 64 << 20,
                }),
                nodes: 56,
            },
            AppSlot {
                workload: Box::new(Hpl { steps: 8 }),
                nodes: 28,
            },
        ]
    };
    let s = quick_sys();
    for combo in Combo::all() {
        let res = run_capacity_combo(s, combo, &quick_mix(), &CapacityConfig::default(), 7);
        let total = res.total_runs();
        assert!(
            (700..900).contains(&total),
            "{}: {total} runs",
            combo.label()
        );
    }
}
